// Package sequence generates the paper's six input distributions, which
// come from the Problem Based Benchmark Suite (PBBS):
//
//	randomSeq-int       n uniform random integers in [1, n]
//	randomSeq-pairInt   the same keys with uniform random integer values
//	exptSeq-int         n integers from an exponential distribution
//	                    (heavy repetition of small keys)
//	exptSeq-pairInt     exponential keys with values
//	trigramSeq          n word strings from a trigram model of English
//	                    text (many duplicate keys)
//	trigramSeq-pairInt  trigram words with integer values
//
// PBBS ships data files; we generate the same distributions from fixed
// seeds (see DESIGN.md substitutions), so runs are exactly reproducible.
// Generation is parallel and schedule-independent: the i-th element is a
// pure function of (seed, i).
package sequence

import (
	"math"

	"phasehash/internal/core"
	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Distribution names the paper's input distributions.
type Distribution string

// The input distributions of the paper's Section 6.
const (
	RandomInt      Distribution = "randomSeq-int"
	RandomPairInt  Distribution = "randomSeq-pairInt"
	TrigramStr     Distribution = "trigramSeq"
	TrigramPairInt Distribution = "trigramSeq-pairInt"
	ExptInt        Distribution = "exptSeq-int"
	ExptPairInt    Distribution = "exptSeq-pairInt"
)

// WordDistributions lists the distributions representable as single-word
// elements (integer keys).
var WordDistributions = []Distribution{RandomInt, RandomPairInt, ExptInt, ExptPairInt}

// AllDistributions lists every distribution in the paper's column order.
var AllDistributions = []Distribution{
	RandomInt, RandomPairInt, TrigramStr, TrigramPairInt, ExptInt, ExptPairInt,
}

// IsPair reports whether the distribution carries values.
func (d Distribution) IsPair() bool {
	return d == RandomPairInt || d == TrigramPairInt || d == ExptPairInt
}

// IsString reports whether the distribution's keys are strings.
func (d Distribution) IsString() bool {
	return d == TrigramStr || d == TrigramPairInt
}

// RandomKeys returns n uniform keys in [1, n] (randomSeq-int).
func RandomKeys(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	parallel.For(n, func(i int) {
		out[i] = hashx.At(seed, i)%uint64(n) + 1
	})
	return out
}

// RandomPairs returns n elements with uniform keys in [1, n] and uniform
// 31-bit values, packed as core.Pair (randomSeq-pairInt). Key range is
// capped at 2^31 to fit the packed representation.
func RandomPairs(n int, seed uint64) []uint64 {
	kr := keyRange(n)
	out := make([]uint64, n)
	parallel.For(n, func(i int) {
		k := uint32(hashx.At(seed, i)%kr) + 1
		v := uint32(hashx.At(seed+1, i) >> 33)
		out[i] = core.Pair(k, v)
	})
	return out
}

func keyRange(n int) uint64 {
	kr := uint64(n)
	if kr > math.MaxUint32-1 {
		kr = math.MaxUint32 - 1
	}
	return kr
}

// exptKey draws from the PBBS exponential distribution: keys follow an
// exponential density with mean n/10, so small keys repeat heavily (the
// paper uses this input to stress collision handling and contention).
func exptKey(n int, seed uint64, i int) uint64 {
	u := hashx.Float64At(seed, i)
	if u <= 0 {
		u = 0.5 / (1 << 53)
	}
	k := uint64(-math.Log(u) * float64(n) / 10.0)
	if k >= uint64(n) {
		k = uint64(n) - 1
	}
	return k + 1
}

// ExptKeys returns n keys from the exponential distribution (exptSeq-int).
func ExptKeys(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	parallel.For(n, func(i int) { out[i] = exptKey(n, seed, i) })
	return out
}

// ExptPairs returns exponential keys with uniform values (exptSeq-pairInt).
func ExptPairs(n int, seed uint64) []uint64 {
	kr := int(keyRange(n))
	out := make([]uint64, n)
	parallel.For(n, func(i int) {
		k := uint32(exptKey(kr, seed, i))
		v := uint32(hashx.At(seed+1, i) >> 33)
		out[i] = core.Pair(k, v)
	})
	return out
}

// WordElements dispatches on the distribution for the single-word
// element inputs used by the hash-table benchmarks.
func WordElements(d Distribution, n int, seed uint64) []uint64 {
	switch d {
	case RandomInt:
		return RandomKeys(n, seed)
	case RandomPairInt:
		return RandomPairs(n, seed)
	case ExptInt:
		return ExptKeys(n, seed)
	case ExptPairInt:
		return ExptPairs(n, seed)
	case TrigramStr:
		return TrigramKeys(n, seed)
	case TrigramPairInt:
		return TrigramKeyPairs(n, seed)
	default:
		panic("sequence: unknown distribution " + string(d))
	}
}

// StrPair is a string-keyed element with an integer value, stored by
// pointer in core.PtrTable (the paper's trigramSeq-pairInt layout: "a
// pointer to a structure with a pointer to a string").
type StrPair struct {
	Key string
	Val uint64
}

// TrigramWords returns n words drawn from the trigram model (trigramSeq).
func TrigramWords(n int, seed uint64) []string {
	out := make([]string, n)
	parallel.For(n, func(i int) { out[i] = trigramWordAt(seed, i) })
	return out
}

// TrigramPairs returns n string-keyed pairs (trigramSeq-pairInt).
func TrigramPairs(n int, seed uint64) []*StrPair {
	out := make([]*StrPair, n)
	parallel.For(n, func(i int) {
		out[i] = &StrPair{Key: trigramWordAt(seed, i), Val: hashx.At(seed+1, i)}
	})
	return out
}

// TrigramKeys returns the trigram word stream mapped to 64-bit integer
// keys via string hashing. The duplicate structure of trigramSeq is
// preserved exactly (equal words map to equal keys); the per-operation
// string-compare cost is not — the word-element comparison tables use
// this adapter, while linearHash-D is additionally benchmarked on the
// true string elements through the pointer table (see DESIGN.md,
// substitutions).
func TrigramKeys(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	parallel.For(n, func(i int) {
		out[i] = hashx.HashString(trigramWordAt(seed, i)) | 1
	})
	return out
}

// TrigramKeyPairs is TrigramKeys packed with integer values
// (trigramSeq-pairInt for the word-element tables; keys are truncated to
// 31 bits, which preserves the duplicate-heavy structure at benchmark
// scales).
func TrigramKeyPairs(n int, seed uint64) []uint64 {
	out := make([]uint64, n)
	parallel.For(n, func(i int) {
		k := uint32(hashx.HashString(trigramWordAt(seed, i))>>33) | 1
		v := uint32(hashx.At(seed+1, i) >> 33)
		out[i] = core.Pair(k, v)
	})
	return out
}

// StrPairOps adapts StrPair to core.PtrOps with min-value duplicate
// resolution; the priority order is lexicographic on keys.
type StrPairOps struct{}

// Hash implements core.PtrOps.
func (StrPairOps) Hash(e *StrPair) uint64 { return hashx.HashString(e.Key) }

// Cmp implements core.PtrOps.
func (StrPairOps) Cmp(a, b *StrPair) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	default:
		return 0
	}
}

// Merge implements core.PtrOps (keep the smaller value, a deterministic
// commutative choice).
func (StrPairOps) Merge(cur, new *StrPair) *StrPair {
	if new.Val < cur.Val {
		return new
	}
	return cur
}
