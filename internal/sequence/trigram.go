package sequence

import (
	"phasehash/internal/hashx"
)

// The trigram word generator follows PBBS's trigramSeq: words are drawn
// from a Markov model of English letter statistics, producing a Zipf-like
// key distribution with many duplicates (short common words recur
// constantly). PBBS loads its model from a data file built from an
// English corpus; we embed a compact second-order approximation — a
// weighted successor table keyed on the previous letter — derived from
// standard English digram frequency tables. The exact probabilities do
// not matter for the experiments; the heavy duplication and
// variable-length string keys do.

// startLetters weights first letters by English word-initial frequency
// (t, a, o, s, w, ... dominate). Sampling is by uniform index into the
// string, so repetition encodes weight.
const startLetters = "ttttaaaooosssswwwwhhhiiibbbmmmfffcccdddpppnnnlllrrreeegguuvvyyjkqxz"

// successors[c-'a'] weights the letter following c. Built from digram
// tables (th, he, in, er, an, re, on, at, en, nd, ti, es, or, te, ...).
var successors = [26]string{
	'a' - 'a': "nnnnttttssssrrrlllcccdddmmbbppgvyiufkwhaexzjoq",
	'b' - 'a': "eeeeaaalllooouuurrryyisbjtvm",
	'c' - 'a': "oooohhhheeeaaatttkkklliiirrruusyc",
	'd' - 'a': "eeeeiiiaaaooosssuuurrydlgvmn",
	'e' - 'a': "rrrrnnnnsssdddaaalllttmmcccvvpppxyfgwhiuobqkz",
	'f' - 'a': "oooiiirrreeeaaauullftys",
	'g' - 'a': "eeehhhaaaooorrriiiuuullstgny",
	'h' - 'a': "eeeeeeaaaiiiooottruysmlnb",
	'i' - 'a': "nnnnnssssttttcccooolllddmmmgggvvvrreeafpbzkxu",
	'j' - 'a': "uuuooaaei",
	'k' - 'a': "eeeiiinnnssylaoru",
	'l' - 'a': "llleeeiiiaaaooouuuyyysdtfmkvp",
	'm' - 'a': "eeeaaaiiioooppuuubbmsyn",
	'n' - 'a': "dddgggeeettticccooosssaauukkvyjfmn",
	'o' - 'a': "nnnnrrrruuuummmttttllswwvppfdcckbiagoexyhzjq",
	'p' - 'a': "eeeaaarrroooliiihhtuupsy",
	'q' - 'a': "uuuuuuuu",
	'r' - 'a': "eeeeaaaiiioootttsssyyydddmmnnkcglufvbp",
	's' - 'a': "tttteeeessshhhiiiooouuupppaaaccmkwlnyfqb",
	't' - 'a': "hhhhhheeeiiioooaaarrrsssuuttyylwcmnz",
	'u' - 'a': "rrrnnnsssttlllpppcccmmgggbbdddaeiofkvxzy",
	'v' - 'a': "eeeeiiiaaaoouy",
	'w' - 'a': "aaahhheeeiiioonnsrly",
	'x' - 'a': "ppptttiiaaceou",
	'y' - 'a': "ooosssetmpiacdblnrwu",
	'z' - 'a': "eeeaaiizoluy",
}

// maxWordLen caps generated word length.
const maxWordLen = 16

// trigramWordAt deterministically generates the i-th word of the stream.
func trigramWordAt(seed uint64, i int) string {
	r := hashx.NewRNG(hashx.At(seed, i))
	var buf [maxWordLen]byte
	c := startLetters[r.Intn(len(startLetters))]
	buf[0] = c
	n := 1
	for n < maxWordLen {
		// Geometric continuation: ~70% chance of another letter, giving
		// short word-token lengths (English running text averages ~4.7
		// characters) and the heavy duplication the input exists for.
		if r.Next()%100 >= 70 {
			break
		}
		succ := successors[c-'a']
		c = succ[r.Intn(len(succ))]
		buf[n] = c
		n++
	}
	return string(buf[:n])
}
