package detres

import (
	"sync"
	"sync/atomic"
	"testing"

	"phasehash/internal/atomicx"
)

// slotStep has n iterates competing for m slots (iterate i wants slot
// i%m). Each round an iterate WriteMin-reserves its slot; the holder of
// the minimum priority takes the slot (appending itself to the slot's
// history and resetting the reservation), everyone else retries. The
// deterministic-reservations guarantee is that each slot's history comes
// out in strictly increasing priority order, on every schedule — the same
// protocol (reserve / check-and-reset) the spanning-forest application
// uses.
type slotStep struct {
	m        int
	reserved []uint64
	mu       []sync.Mutex
	history  [][]int
}

func newSlotStep(m int) *slotStep {
	s := &slotStep{
		m:        m,
		reserved: make([]uint64, m),
		mu:       make([]sync.Mutex, m),
		history:  make([][]int, m),
	}
	for i := range s.reserved {
		s.reserved[i] = ^uint64(0)
	}
	return s
}

func (s *slotStep) Reserve(i int) bool {
	atomicx.WriteMin(&s.reserved[i%s.m], uint64(i))
	return true
}

func (s *slotStep) Commit(i int) bool {
	slot := i % s.m
	// check-and-reset: only the priority minimum proceeds.
	if !atomic.CompareAndSwapUint64(&s.reserved[slot], uint64(i), ^uint64(0)) {
		return false
	}
	s.mu[slot].Lock()
	s.history[slot] = append(s.history[slot], i)
	s.mu[slot].Unlock()
	return true
}

func TestSpeculativeForSlotOrderDeterministic(t *testing.T) {
	n, m := 5000, 37
	for trial := 0; trial < 5; trial++ {
		s := newSlotStep(m)
		stats := SpeculativeFor(s, 0, n, 0)
		if stats.Committed != n {
			t.Fatalf("Committed = %d, want %d", stats.Committed, n)
		}
		total := 0
		for slot, h := range s.history {
			total += len(h)
			for j := 1; j < len(h); j++ {
				if h[j] <= h[j-1] {
					t.Fatalf("trial %d: slot %d history out of priority order: %v", trial, slot, h[:j+1])
				}
			}
		}
		if total != n {
			t.Fatalf("history holds %d entries, want %d", total, n)
		}
	}
}

// trivialStep commits everything first try.
type trivialStep struct{ done []atomic.Int32 }

func (s *trivialStep) Reserve(int) bool { return true }
func (s *trivialStep) Commit(i int) bool {
	s.done[i].Add(1)
	return true
}

func TestSpeculativeForRunsEachIterateOnce(t *testing.T) {
	n := 10000
	s := &trivialStep{done: make([]atomic.Int32, n)}
	stats := SpeculativeFor(s, 0, n, 128)
	if stats.Committed != n {
		t.Fatalf("Committed = %d, want %d", stats.Committed, n)
	}
	for i := range s.done {
		if s.done[i].Load() != 1 {
			t.Fatalf("iterate %d committed %d times", i, s.done[i].Load())
		}
	}
	if stats.Rounds < n/128 {
		t.Errorf("Rounds = %d, expected at least %d with granularity 128", stats.Rounds, n/128)
	}
}

// flakyStep fails each iterate's first commit attempt, exercising retry.
type flakyStep struct {
	attempts []atomic.Int32
}

func (s *flakyStep) Reserve(int) bool { return true }
func (s *flakyStep) Commit(i int) bool {
	return s.attempts[i].Add(1) > 1
}

func TestSpeculativeForRetries(t *testing.T) {
	n := 1000
	s := &flakyStep{attempts: make([]atomic.Int32, n)}
	stats := SpeculativeFor(s, 0, n, 100)
	if stats.Committed != n {
		t.Fatalf("Committed = %d, want %d", stats.Committed, n)
	}
	for i := range s.attempts {
		if s.attempts[i].Load() != 2 {
			t.Fatalf("iterate %d took %d attempts, want 2", i, s.attempts[i].Load())
		}
	}
}

// dropStep drops odd iterates at reserve time.
type dropStep struct{ committed atomic.Int64 }

func (s *dropStep) Reserve(i int) bool { return i%2 == 0 }
func (s *dropStep) Commit(i int) bool {
	s.committed.Add(1)
	return true
}

func TestSpeculativeForDrops(t *testing.T) {
	n := 1000
	s := &dropStep{}
	stats := SpeculativeFor(s, 0, n, 64)
	if stats.Dropped != n/2 || stats.Committed != n/2 {
		t.Fatalf("Dropped=%d Committed=%d, want %d each", stats.Dropped, stats.Committed, n/2)
	}
	if s.committed.Load() != int64(n/2) {
		t.Fatalf("step saw %d commits", s.committed.Load())
	}
}
