package detres

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"phasehash/internal/chaos"
	"phasehash/internal/core"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
)

// This file is the determinism oracle: the cross-schedule counterpart
// of SpeculativeFor's determinism-by-construction. The paper's claim is
// that a phase-concurrent table's quiescent state depends only on the
// set of operations performed, never on the schedule. The oracle
// *manufactures* schedules — replaying one generated workload across a
// seed × worker-count × fault-profile grid, with package chaos
// perturbing the probe/CAS/migration hot paths when built with
// `-tags chaos` — and asserts that Elements(), Count() and the raw
// quiescent cell layout are byte-identical in every cell of the grid.
// On divergence it shrinks the workload and reports a minimized repro
// (distribution, seed, prefix length, grid cell, injected-site trace).

// OracleResult is one replay's quiescent observation.
type OracleResult struct {
	Elements []uint64 // deterministic packed contents
	Layout   []uint64 // raw cell array (history-independence witness)
	Count    int
	// Trace is the self-tuning decision trace when the runner exercises
	// an adaptive component (TuneEpochRunner); empty otherwise. Compared
	// byte-for-byte like the layout: tuning decisions must be a pure
	// function of the operation script, never of the schedule.
	Trace string
}

// Runner replays a workload on one table implementation: a parallel
// insert phase, a barrier, a parallel delete phase (every third input
// element), a barrier, then the quiescent observation.
type Runner interface {
	Name() string
	Run(elems []uint64, workers int) OracleResult
}

// replayPhases drives the two write phases: insert(i) for every input
// index, a barrier, then del(i) for every index ≡ 0 (mod 3). Indices
// are striped across the workers, so the per-goroutine operation order
// varies with the worker count while the operation *set* — and hence
// the deterministic quiescent state — does not.
func replayPhases(n, workers int, insert, del func(i int)) {
	if workers < 1 {
		workers = 1
	}
	stripe := func(fn func(i int), every int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if chaos.Enabled {
					chaos.SkewWorker(chaos.SiteParallelWorker)
				}
				for i := w; i < n; i += workers {
					if i%every == 0 {
						fn(i)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	stripe(insert, 1)
	stripe(del, 3)
}

// WordRunner replays on a fixed-capacity WordTable[SetOps]. Capacity
// must comfortably exceed the workload's distinct-key count (keep load
// below ~0.9, as everywhere in the library).
type WordRunner struct{ Capacity int }

// Name implements Runner.
func (r WordRunner) Name() string { return "word" }

// Run implements Runner.
func (r WordRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewWordTable[core.SetOps](r.Capacity)
	replayPhases(len(elems), workers,
		func(i int) { t.Insert(elems[i]) },
		func(i int) { t.Delete(elems[i]) })
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// WordBulkRunner replays the same workload through the bulk phase
// kernels (InsertAll / DeleteAll) instead of per-element striping. Its
// operation set per phase is identical to WordRunner's, so its
// quiescent state must be byte-identical too — across the grid AND
// against WordRunner's cells (the cross-path assertion of the oracle
// tests). The blocked pool dispatch replaces worker striping as the
// schedule variation.
type WordBulkRunner struct{ Capacity int }

// Name implements Runner.
func (r WordBulkRunner) Name() string { return "word-bulk" }

// Run implements Runner.
func (r WordBulkRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewWordTable[core.SetOps](r.Capacity)
	t.InsertAll(elems)
	t.DeleteAll(everyThird(elems))
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// everyThird selects the delete-phase inputs of replayPhases (every
// index ≡ 0 mod 3) as a slice for the bulk kernels.
func everyThird(elems []uint64) []uint64 {
	del := make([]uint64, 0, len(elems)/3+1)
	for i := 0; i < len(elems); i += 3 {
		del = append(del, elems[i])
	}
	return del
}

// ShardedRunner replays through ShardedTable's per-element atomic path.
// Shards is the explicit shard count and is part of the determinism
// function (layout and Elements order depend on it), so the oracle
// always pins it — the automatic policy would derive it from the
// per-cell worker count and legitimately change the layout across the
// grid.
type ShardedRunner struct{ Capacity, Shards int }

// Name implements Runner.
func (r ShardedRunner) Name() string { return "sharded" }

// Run implements Runner.
func (r ShardedRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewShardedTable[core.SetOps](r.Capacity, r.Shards)
	replayPhases(len(elems), workers,
		func(i int) { t.Insert(elems[i]) },
		func(i int) { t.Delete(elems[i]) })
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// ShardedBulkRunner replays the workload through ShardedTable's
// owner-computes bulk kernels (radix partition, then one worker per
// shard with plain stores). Its operation set per phase matches
// ShardedRunner's, so — history independence again — its quiescent
// shard layouts must be byte-identical across the grid and against
// ShardedRunner's (RunCrossOracle), and its Elements multiset must
// equal the flat WordRunner's on the same workload (RunMultisetOracle).
type ShardedBulkRunner struct{ Capacity, Shards int }

// Name implements Runner.
func (r ShardedBulkRunner) Name() string { return "sharded-bulk" }

// Run implements Runner.
func (r ShardedBulkRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewShardedTable[core.SetOps](r.Capacity, r.Shards)
	t.InsertAll(elems)
	t.DeleteAll(everyThird(elems))
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// GrowRunner replays on a GrowTable[SetOps], covering the migration
// machinery; Elements/Snapshot drain any in-flight migration first.
type GrowRunner struct{ Initial int }

// Name implements Runner.
func (r GrowRunner) Name() string { return "grow" }

// Run implements Runner.
func (r GrowRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewGrowTable[core.SetOps](r.Initial)
	replayPhases(len(elems), workers,
		func(i int) { t.Insert(elems[i]) },
		func(i int) { t.Delete(elems[i]) })
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// GrowBulkRunner is WordBulkRunner for the growing table: bulk kernels
// over the migration machinery.
type GrowBulkRunner struct{ Initial int }

// Name implements Runner.
func (r GrowBulkRunner) Name() string { return "grow-bulk" }

// Run implements Runner.
func (r GrowBulkRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewGrowTable[core.SetOps](r.Initial)
	t.InsertAll(elems)
	t.DeleteAll(everyThird(elems))
	return OracleResult{Elements: t.Elements(), Layout: t.Snapshot(), Count: t.Count()}
}

// OracleConfig spans the replay grid. The first worker count and the
// first profile form the reference cell every other cell must match.
type OracleConfig struct {
	Dists    []sequence.Distribution // defaults to the paper's six
	N        int                     // elements per workload
	Seeds    []uint64
	Workers  []int
	Profiles []chaos.Profile // inert without the chaos build tag
}

// DefaultOracleConfig returns the grid the CI chaos job runs: all six
// key distributions of EXPERIMENTS.md × 8 seeds × 4 worker counts × 4
// fault profiles (plus the control profile as reference).
func DefaultOracleConfig(n int) OracleConfig {
	return OracleConfig{
		Dists:    sequence.AllDistributions,
		N:        n,
		Seeds:    []uint64{1, 2, 3, 5, 8, 13, 21, 34},
		Workers:  []int{1, 2, 4, 8},
		Profiles: chaos.Profiles,
	}
}

// OracleWorkload generates the single-word element stream for one grid
// row. The two string-keyed distributions are mapped to hashed word
// keys (the EXPERIMENTS.md substitution), preserving their
// duplicate-heavy structure.
func OracleWorkload(d sequence.Distribution, n int, seed uint64) []uint64 {
	switch d {
	case sequence.TrigramStr:
		return sequence.TrigramKeys(n, seed)
	case sequence.TrigramPairInt:
		return sequence.TrigramKeyPairs(n, seed)
	default:
		return sequence.WordElements(d, n, seed)
	}
}

// Divergence reports a determinism violation: a grid cell whose
// quiescent state differs from the reference cell's. It implements
// error; Error() is the minimized repro.
type Divergence struct {
	Runner     string
	Dist       sequence.Distribution
	Seed       uint64
	N          int // original workload length
	MinN       int // shortest diverging prefix found
	Workers    int
	Profile    string
	RefWorkers int
	RefProfile string
	Detail     string // first difference
	SiteTrace  string // chaos per-site fire counts, when built with -tags chaos
}

// Error formats the minimized repro.
func (d *Divergence) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "detres: determinism divergence on %s table: dist=%s seed=%d n=%d (minimized n=%d) workers=%d profile=%s vs reference workers=%d profile=%s: %s",
		d.Runner, d.Dist, d.Seed, d.N, d.MinN, d.Workers, d.Profile, d.RefWorkers, d.RefProfile, d.Detail)
	if d.SiteTrace != "" {
		fmt.Fprintf(&b, "; injected sites: %s", d.SiteTrace)
	}
	fmt.Fprintf(&b, "; replay: RunOracle(%sRunner, OracleConfig{Dists: []sequence.Distribution{%q}, N: %d, Seeds: []uint64{%d}, Workers: []int{%d, %d}, Profiles: [%s %s]})",
		d.Runner, d.Dist, d.MinN, d.Seed, d.RefWorkers, d.Workers, d.RefProfile, d.Profile)
	return b.String()
}

// RunOracle replays every workload of the grid on r and compares each
// cell's quiescent state against the reference cell. It returns nil
// when every cell agrees, or the first divergence (minimized) when the
// determinism claim is violated. It mutates the package-global worker
// count and chaos configuration while running and restores both.
func RunOracle(r Runner, cfg OracleConfig) *Divergence {
	if len(cfg.Dists) == 0 {
		cfg.Dists = sequence.AllDistributions
	}
	prevWorkers := parallel.SetNumWorkers(0)
	defer func() {
		parallel.SetNumWorkers(prevWorkers)
		chaos.Disable()
	}()
	for _, dist := range cfg.Dists {
		for _, seed := range cfg.Seeds {
			elems := OracleWorkload(dist, cfg.N, seed)
			var ref OracleResult
			haveRef := false
			for _, prof := range cfg.Profiles {
				for _, w := range cfg.Workers {
					res := runCell(r, elems, w, prof, seed)
					if !haveRef {
						ref, haveRef = res, true
						continue
					}
					if detail := compareResults(ref, res); detail != "" {
						d := &Divergence{
							Runner:     r.Name(),
							Dist:       dist,
							Seed:       seed,
							N:          cfg.N,
							MinN:       cfg.N,
							Workers:    w,
							Profile:    prof.Name,
							RefWorkers: cfg.Workers[0],
							RefProfile: cfg.Profiles[0].Name,
							Detail:     detail,
							SiteTrace:  chaos.TraceSummary(),
						}
						minimize(r, d, elems, cfg.Workers[0], cfg.Profiles[0], prof)
						return d
					}
				}
			}
		}
	}
	return nil
}

// RunCrossOracle asserts two runners are observationally identical:
// every grid cell of b must match a's reference cell (first worker
// count, first profile) on the same workload. It is the oracle row that
// pins the bulk kernels to the per-element path — pass a=WordRunner,
// b=WordBulkRunner (or the grow pair) and any schedule- or
// staging-induced layout difference between the paths is a failure.
func RunCrossOracle(a, b Runner, cfg OracleConfig) *Divergence {
	if len(cfg.Dists) == 0 {
		cfg.Dists = sequence.AllDistributions
	}
	prevWorkers := parallel.SetNumWorkers(0)
	defer func() {
		parallel.SetNumWorkers(prevWorkers)
		chaos.Disable()
	}()
	for _, dist := range cfg.Dists {
		for _, seed := range cfg.Seeds {
			elems := OracleWorkload(dist, cfg.N, seed)
			ref := runCell(a, elems, cfg.Workers[0], cfg.Profiles[0], seed)
			for _, prof := range cfg.Profiles {
				for _, w := range cfg.Workers {
					res := runCell(b, elems, w, prof, seed)
					if detail := compareResults(ref, res); detail != "" {
						d := &Divergence{
							Runner:     a.Name() + " vs " + b.Name(),
							Dist:       dist,
							Seed:       seed,
							N:          cfg.N,
							MinN:       cfg.N,
							Workers:    w,
							Profile:    prof.Name,
							RefWorkers: cfg.Workers[0],
							RefProfile: cfg.Profiles[0].Name,
							Detail:     detail,
							SiteTrace:  chaos.TraceSummary(),
						}
						return d
					}
				}
			}
		}
	}
	return nil
}

// RunMultisetOracle asserts two runners store the same element *set*
// without requiring the same layout: every grid cell of b must match
// a's reference cell on Count and on the sorted Elements multiset. It
// is the oracle row relating differently-shaped deterministic tables —
// e.g. the flat WordRunner against a ShardedBulkRunner, whose layouts
// and Elements orders legitimately differ (the shard count is part of
// the layout function) while the contents must not.
func RunMultisetOracle(a, b Runner, cfg OracleConfig) *Divergence {
	if len(cfg.Dists) == 0 {
		cfg.Dists = sequence.AllDistributions
	}
	prevWorkers := parallel.SetNumWorkers(0)
	defer func() {
		parallel.SetNumWorkers(prevWorkers)
		chaos.Disable()
	}()
	for _, dist := range cfg.Dists {
		for _, seed := range cfg.Seeds {
			elems := OracleWorkload(dist, cfg.N, seed)
			ref := runCell(a, elems, cfg.Workers[0], cfg.Profiles[0], seed)
			sortedRef := append([]uint64(nil), ref.Elements...)
			sort.Slice(sortedRef, func(i, j int) bool { return sortedRef[i] < sortedRef[j] })
			for _, prof := range cfg.Profiles {
				for _, w := range cfg.Workers {
					res := runCell(b, elems, w, prof, seed)
					if detail := compareMultisets(ref.Count, sortedRef, res); detail != "" {
						return &Divergence{
							Runner:     a.Name() + " vs " + b.Name() + " (multiset)",
							Dist:       dist,
							Seed:       seed,
							N:          cfg.N,
							MinN:       cfg.N,
							Workers:    w,
							Profile:    prof.Name,
							RefWorkers: cfg.Workers[0],
							RefProfile: cfg.Profiles[0].Name,
							Detail:     detail,
							SiteTrace:  chaos.TraceSummary(),
						}
					}
				}
			}
		}
	}
	return nil
}

// compareMultisets returns "" when res holds exactly the sortedRef
// multiset (and refCount elements), or the first difference.
func compareMultisets(refCount int, sortedRef []uint64, res OracleResult) string {
	if refCount != res.Count {
		return fmt.Sprintf("Count %d vs %d", refCount, res.Count)
	}
	if len(sortedRef) != len(res.Elements) {
		return fmt.Sprintf("len(Elements) %d vs %d", len(sortedRef), len(res.Elements))
	}
	got := append([]uint64(nil), res.Elements...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range sortedRef {
		if sortedRef[i] != got[i] {
			return fmt.Sprintf("sorted Elements[%d] = %#x vs %#x", i, sortedRef[i], got[i])
		}
	}
	return ""
}

// runCell executes one grid cell: arm the fault profile (seeded with
// the workload seed so the repro is just the grid coordinates), pin the
// library worker count, replay.
func runCell(r Runner, elems []uint64, workers int, prof chaos.Profile, seed uint64) OracleResult {
	if prof.Name == chaos.ProfileNone.Name {
		chaos.Disable()
	} else {
		chaos.Configure(prof, seed)
	}
	parallel.SetNumWorkers(workers)
	res := r.Run(elems, workers)
	chaos.Disable()
	return res
}

// compareResults returns "" when the two observations are identical,
// or a description of the first difference.
func compareResults(a, b OracleResult) string {
	if a.Count != b.Count {
		return fmt.Sprintf("Count %d vs %d", a.Count, b.Count)
	}
	if len(a.Elements) != len(b.Elements) {
		return fmt.Sprintf("len(Elements) %d vs %d", len(a.Elements), len(b.Elements))
	}
	for i := range a.Elements {
		if a.Elements[i] != b.Elements[i] {
			return fmt.Sprintf("Elements[%d] = %#x vs %#x", i, a.Elements[i], b.Elements[i])
		}
	}
	if len(a.Layout) != len(b.Layout) {
		return fmt.Sprintf("layout size %d vs %d cells", len(a.Layout), len(b.Layout))
	}
	for i := range a.Layout {
		if a.Layout[i] != b.Layout[i] {
			return fmt.Sprintf("quiescent cell %d = %#x vs %#x", i, a.Layout[i], b.Layout[i])
		}
	}
	if a.Trace != b.Trace {
		return fmt.Sprintf("tuning trace %q vs %q", a.Trace, b.Trace)
	}
	return ""
}

// minimize shrinks the diverging workload by prefix halving: as long as
// half the prefix still reproduces a divergence between the reference
// cell and the failing cell (retrying a few times, since fault
// injection is probabilistic), keep the half. Updates d.MinN, d.Detail
// and d.SiteTrace in place.
func minimize(r Runner, d *Divergence, elems []uint64, refW int, refProf, prof chaos.Profile) {
	diverges := func(m int) (string, string, bool) {
		for attempt := 0; attempt < 3; attempt++ {
			ref := runCell(r, elems[:m], refW, refProf, d.Seed)
			res := runCell(r, elems[:m], d.Workers, prof, d.Seed)
			trace := chaos.TraceSummary()
			if detail := compareResults(ref, res); detail != "" {
				return detail, trace, true
			}
		}
		return "", "", false
	}
	m := len(elems)
	for m/2 >= 16 {
		detail, trace, ok := diverges(m / 2)
		if !ok {
			break
		}
		m /= 2
		d.MinN, d.Detail, d.SiteTrace = m, detail, trace
	}
}
