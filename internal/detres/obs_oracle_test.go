//go:build obs

package detres

import (
	"testing"

	"phasehash/internal/chaos"
	"phasehash/internal/core"
	"phasehash/internal/obs"
	"phasehash/internal/parallel"
	"phasehash/internal/sequence"
)

// runObsCell runs one oracle cell under a clean telemetry state and
// returns the merged op counts. Probe steps, CAS failures and
// displacement tallies measure the *schedule* and legitimately vary
// across workers and chaos profiles; the op counts measure the
// *workload* and must not.
func runObsCell(r Runner, elems []uint64, workers int, prof chaos.Profile, seed uint64) obs.OpCounts {
	obs.Reset()
	runCell(r, elems, workers, prof, seed)
	s := obs.TakeSnapshot()
	return s.Ops()
}

// TestObsOpCountsScheduleIndependent wires the phasestats determinism
// claim into the detres grid: for a fixed workload, obs.Snapshot() op
// counts are identical across worker counts and chaos profiles — the
// schedule moves probe lengths and retries, never how many operations
// the phases performed. GrowRunner is deliberately excluded: migration
// re-inserts records through the same insert path at schedule-dependent
// times, so its op counts measure the grow schedule, not the workload.
func TestObsOpCountsScheduleIndependent(t *testing.T) {
	cfg := testOracleConfig(t)
	runners := []Runner{
		WordRunner{Capacity: 4 * cfg.N},
		WordBulkRunner{Capacity: 4 * cfg.N},
		ShardedRunner{Capacity: 4 * cfg.N, Shards: 8},
		ShardedBulkRunner{Capacity: 4 * cfg.N, Shards: 8},
	}
	prevWorkers := parallel.SetNumWorkers(0)
	defer func() {
		parallel.SetNumWorkers(prevWorkers)
		obs.Reset()
	}()
	for _, r := range runners {
		for _, dist := range cfg.Dists {
			for _, seed := range cfg.Seeds {
				elems := OracleWorkload(dist, cfg.N, seed)
				ref := runObsCell(r, elems, cfg.Workers[0], cfg.Profiles[0], seed)
				if ref.InsertOps == 0 || ref.DeleteOps == 0 {
					t.Fatalf("%s/%s/seed=%d: reference cell recorded no ops (%+v)",
						r.Name(), dist, seed, ref)
				}
				for pi, prof := range cfg.Profiles {
					for _, w := range cfg.Workers {
						if pi == 0 && w == cfg.Workers[0] {
							continue
						}
						got := runObsCell(r, elems, w, prof, seed)
						if got != ref {
							t.Fatalf("%s/%s/seed=%d: op counts depend on the schedule: workers=%d profile=%s got %+v, reference (workers=%d profile=%s) %+v",
								r.Name(), dist, seed, w, prof.Name, got,
								cfg.Workers[0], cfg.Profiles[0].Name, ref)
						}
					}
				}
			}
		}
	}
}

// TestObsFindOpCountsScheduleIndependent covers the read phase, which
// the oracle runners don't exercise: a striped parallel Contains sweep
// must report the same find-op and hit counts at every worker count.
func TestObsFindOpCountsScheduleIndependent(t *testing.T) {
	cfg := testOracleConfig(t)
	elems := OracleWorkload(sequence.RandomInt, cfg.N, cfg.Seeds[0])
	tb := core.NewWordTable[core.SetOps](4 * cfg.N)
	for _, e := range elems {
		tb.Insert(e)
	}
	prevWorkers := parallel.SetNumWorkers(0)
	defer func() {
		parallel.SetNumWorkers(prevWorkers)
		obs.Reset()
	}()
	var ref obs.OpCounts
	for wi, w := range cfg.Workers {
		parallel.SetNumWorkers(w)
		obs.Reset()
		parallel.For(len(elems), func(i int) {
			tb.Contains(elems[i])
			tb.Contains(elems[i] | 1<<63) // guaranteed miss half
		})
		s := obs.TakeSnapshot()
		got := s.Ops()
		if wi == 0 {
			ref = got
			if ref.FindOps != 2*uint64(len(elems)) {
				t.Fatalf("reference find ops %d, want %d", ref.FindOps, 2*len(elems))
			}
			continue
		}
		if got != ref {
			t.Fatalf("workers=%d: find op counts %+v != reference %+v", w, got, ref)
		}
	}
}
