package detres

import (
	"testing"

	"phasehash/internal/tune"
)

// tuneOracleConfig sizes the workload so tuneScript's epochs cross all
// three flush-path thresholds (the last epoch must exceed
// ParallelBatchMax), and trims the seed axis: each cell replays ~2×
// the element count in submissions through a live server, so four
// seeds buy the same schedule variety at half the epoch grid's cost.
func tuneOracleConfig(t *testing.T) OracleConfig {
	cfg := epochOracleConfig(t)
	cfg.N = tune.ParallelBatchMax * 2
	if len(cfg.Seeds) > 4 {
		cfg.Seeds = cfg.Seeds[:4]
	}
	return cfg
}

// TestTuneScriptCrossesPaths guards the oracle against vacuity: the
// script must actually drive the controller through all three flush
// paths, so the compared traces contain real decisions. A threshold
// change that flattens the script to one path fails here, loudly,
// rather than silently weakening the grid tests below.
func TestTuneScriptCrossesPaths(t *testing.T) {
	cfg := tuneOracleConfig(t)
	seen := map[tune.Path]bool{}
	steps := tuneScript(OracleWorkload(cfg.Dists[0], cfg.N, cfg.Seeds[0]))
	for _, st := range steps {
		seen[tune.FlushPath(len(st.ins), len(st.del), len(st.fnd)+1)] = true
	}
	for _, p := range []tune.Path{tune.PathSerial, tune.PathParallel, tune.PathSharded} {
		if !seen[p] {
			t.Fatalf("tuneScript(%d elems) never selects %v across %d epochs", cfg.N, p, len(steps))
		}
	}
}

// TestOracleGridTune is the adaptive-layer determinism gate: the
// path-crossing script replayed through a live tuning server across
// the seed × worker × fault-profile grid, asserting every cell agrees
// byte-for-byte on the concatenated per-epoch quiescent snapshots AND
// on the decision trace. The trace comparison is the new obligation:
// tuning decisions must derive from the admitted multiset alone, so a
// worker count or injected fault that shifts a single decision — even
// one producing the same final state — is a failure.
func TestOracleGridTune(t *testing.T) {
	cfg := tuneOracleConfig(t)
	if d := RunOracle(TuneEpochRunner{Capacity: 4 * cfg.N, Shards: 8}, cfg); d != nil {
		t.Fatal(d)
	}
}

// TestOracleCrossPathTune pins the live adaptive server to the
// reference: bare kernels plus a bare controller fed the script's own
// batch sizes. Every grid cell of the server must match the reference
// state and trace, so any gap between what the server's flush hands
// its controller and what the script says — a shed op, a split epoch,
// a miscounted read — lands here.
func TestOracleCrossPathTune(t *testing.T) {
	cfg := tuneOracleConfig(t)
	a := TuneEpochRefRunner{Capacity: 4 * cfg.N, Shards: 8}
	b := TuneEpochRunner{Capacity: 4 * cfg.N, Shards: 8}
	if d := RunCrossOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}
