package detres

import "phasehash/internal/core"

// Compact-table runners. Their Layout is the concatenation of the raw
// cell array and the raw ctrl words, so the oracle's byte comparison
// pins BOTH arrays of the quiescent (cells, ctrl) pair across the
// schedule grid — a stale fingerprint or surviving tombstone diverges
// even when the cells agree. Each replay also runs CheckInvariant
// before observing, so every grid cell additionally proves the ctrl
// array is the derived function of the cells (and tombstone-free) at
// quiescence, not merely schedule-stable.

// compactResult builds the oracle observation for a quiesced compact
// table, failing loudly on an invariant violation.
func compactResult(elements []uint64, cells, ctrl []uint64, count int, invariant error) OracleResult {
	if invariant != nil {
		panic("detres: compact invariant violated at quiescence: " + invariant.Error())
	}
	return OracleResult{
		Elements: elements,
		Layout:   append(cells, ctrl...),
		Count:    count,
	}
}

// CompactRunner replays on a fixed-capacity CompactTable[SetOps]
// through the per-element atomic path (probe CAS loops + syncCtrl
// convergence).
type CompactRunner struct{ Capacity int }

// Name implements Runner.
func (r CompactRunner) Name() string { return "compact" }

// Run implements Runner.
func (r CompactRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewCompactTable[core.SetOps](r.Capacity)
	replayPhases(len(elems), workers,
		func(i int) { t.Insert(elems[i]) },
		func(i int) { t.Delete(elems[i]) })
	return compactResult(t.Elements(), t.Snapshot(), t.CtrlSnapshot(), t.Count(), t.CheckInvariant())
}

// CompactBulkRunner replays through CompactTable's staged bulk kernels;
// as with WordBulkRunner, its operation set per phase matches
// CompactRunner's, so its quiescent (cells, ctrl) pair must be
// byte-identical across the grid and against CompactRunner's
// (RunCrossOracle pins bulk to per-element).
type CompactBulkRunner struct{ Capacity int }

// Name implements Runner.
func (r CompactBulkRunner) Name() string { return "compact-bulk" }

// Run implements Runner.
func (r CompactBulkRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewCompactTable[core.SetOps](r.Capacity)
	t.InsertAll(elems)
	t.DeleteAll(everyThird(elems))
	return compactResult(t.Elements(), t.Snapshot(), t.CtrlSnapshot(), t.Count(), t.CheckInvariant())
}

// ShardedCompactRunner replays through ShardedCompactTable's
// per-element atomic path; Shards is pinned for the same reason as
// ShardedRunner's.
type ShardedCompactRunner struct{ Capacity, Shards int }

// Name implements Runner.
func (r ShardedCompactRunner) Name() string { return "sharded-compact" }

// Run implements Runner.
func (r ShardedCompactRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewShardedCompactTable[core.SetOps](r.Capacity, r.Shards)
	replayPhases(len(elems), workers,
		func(i int) { t.Insert(elems[i]) },
		func(i int) { t.Delete(elems[i]) })
	return compactResult(t.Elements(), t.Snapshot(), t.CtrlSnapshot(), t.Count(), t.CheckInvariant())
}

// ShardedCompactBulkRunner replays through the owner-computes kernels
// (radix partition, then one worker per shard with plain stores and
// plain ctrl writes — including the transient serial-delete
// tombstones, which CheckInvariant proves are gone at quiescence).
type ShardedCompactBulkRunner struct{ Capacity, Shards int }

// Name implements Runner.
func (r ShardedCompactBulkRunner) Name() string { return "sharded-compact-bulk" }

// Run implements Runner.
func (r ShardedCompactBulkRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewShardedCompactTable[core.SetOps](r.Capacity, r.Shards)
	t.InsertAll(elems)
	t.DeleteAll(everyThird(elems))
	return compactResult(t.Elements(), t.Snapshot(), t.CtrlSnapshot(), t.Count(), t.CheckInvariant())
}
