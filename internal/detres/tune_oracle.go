package detres

// Self-tuning oracle: the determinism claim extended across the
// adaptive layer. internal/tune picks the flush execution path for
// each epoch (serial / parallel-atomic / sharded-bulk) from that
// epoch's admitted batch sizes; the claim is that the decisions — and
// therefore the decision trace AND the quiescent state they produce —
// are a pure function of the operation script, never of the schedule.
// TuneEpochRunner replays a path-crossing epoch script through a live
// epoch.Server with Config.Tune on and captures both the per-epoch
// quiescent snapshots and the server's TuneTrace; TuneEpochRefRunner
// replays the same script through the bare bulk kernels plus a bare
// controller fed the script's own batch sizes. RunOracle then proves
// grid-wide byte-identity of state + trace, and RunCrossOracle pins
// the live adaptive server to the goroutine-free reference — any
// schedule dependence in the tuner's inputs lands here.

import (
	"context"
	"fmt"
	"sync"

	"phasehash/internal/chaos"
	"phasehash/internal/core"
	"phasehash/internal/epoch"
	"phasehash/internal/parallel"
	"phasehash/internal/tune"
)

// tuneStepFor scripts one epoch over a chunk with the oracle's usual
// conventions: insert the whole chunk, delete every third element,
// find every fifth.
func tuneStepFor(chunk []uint64) epochStep {
	st := epochStep{ins: chunk}
	for i := 0; i < len(chunk); i += 3 {
		st.del = append(st.del, chunk[i])
	}
	for i := 0; i < len(chunk); i += 5 {
		st.fnd = append(st.fnd, chunk[i])
	}
	return st
}

// tuneScript splits the workload into epochs whose batch sizes cross
// the tune path thresholds: a small epoch (≤ SerialBatchMax), a medium
// one (≤ ParallelBatchMax) and the large remainder, so a full-size
// workload drives the controller through all three flush paths and the
// oracle compares a trace with real decisions in it, not a constant.
// Like epochScript, the split depends only on the workload.
func tuneScript(elems []uint64) []epochStep {
	bounds := []int{tune.SerialBatchMax / 4, tune.ParallelBatchMax / 2}
	steps := make([]epochStep, 0, len(bounds)+1)
	lo := 0
	for _, hi := range bounds {
		if hi > len(elems) {
			hi = len(elems)
		}
		if hi > lo {
			steps = append(steps, tuneStepFor(elems[lo:hi]))
			lo = hi
		}
	}
	if lo < len(elems) {
		steps = append(steps, tuneStepFor(elems[lo:]))
	}
	return steps
}

// TuneEpochRunner replays the path-crossing script through a live
// epoch.Server with the adaptive flush-path selector enabled. As in
// EpochRunner, MaxBatch and QueueLimit are sized to the largest epoch
// so every Flush executes exactly one script epoch — which makes the
// controller's inputs (the per-epoch batch sizes) exactly the script's,
// whatever the submission schedule. The observation appends each
// epoch's quiescent snapshot and finally the server's decision trace.
type TuneEpochRunner struct {
	Capacity int
	Shards   int // pinned, as everywhere in the oracle
}

// Name implements Runner.
func (r TuneEpochRunner) Name() string { return "tune-epoch" }

// Run implements Runner.
func (r TuneEpochRunner) Run(elems []uint64, workers int) OracleResult {
	if workers < 1 {
		workers = 1
	}
	steps := tuneScript(elems)
	limit := 1
	for _, st := range steps {
		if n := len(st.ins) + len(st.del) + len(st.fnd) + 1; n > limit {
			limit = n
		}
	}
	limit += 16
	// The controller also adjusts the global parallel grain knob
	// (performance-only, excluded from the trace); restore the default
	// so one grid cell cannot leak tuning into the next.
	defer parallel.SetBlocksPerWorker(0)
	s := epoch.NewServerWith(
		epoch.Config{MaxBatch: limit, QueueLimit: limit, Tune: true},
		core.NewShardedTable[core.SetOps](r.Capacity, r.Shards))
	defer s.Close(context.Background())

	var layout, packed []uint64
	count := 0
	for _, st := range steps {
		ops := st.ops()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if chaos.Enabled {
					chaos.SkewWorker(chaos.SiteParallelWorker)
				}
				for i := w; i < len(ops); i += workers {
					if _, err := s.Submit(context.Background(), ops[i].op, ops[i].key); err != nil {
						// The queue is sized to the script; any admission
						// error here is a harness bug, not a grid outcome.
						panic(fmt.Sprintf("detres: tune oracle Submit(%v, %#x): %v", ops[i].op, ops[i].key, err))
					}
				}
			}(w)
		}
		wg.Wait()
		s.Flush()
		t := s.Table()
		layout = append(layout, t.Snapshot()...)
		packed = append(packed, t.Elements()...)
		count += t.Count()
	}
	return OracleResult{Elements: packed, Layout: layout, Count: count, Trace: s.TuneTrace()}
}

// TuneEpochRefRunner is the adaptive server with every moving part
// removed: the same script replayed through the bare bulk kernels,
// with a bare controller fed each epoch's scripted batch sizes — the
// exact inputs the server's flush hands its own controller (reads
// include the one OpElements snapshot per epoch). Its trace is the
// ground truth the live server's must match byte-for-byte.
type TuneEpochRefRunner struct {
	Capacity int
	Shards   int
}

// Name implements Runner.
func (r TuneEpochRefRunner) Name() string { return "tune-epoch-ref" }

// Run implements Runner.
func (r TuneEpochRefRunner) Run(elems []uint64, workers int) OracleResult {
	t := core.NewShardedTable[core.SetOps](r.Capacity, r.Shards)
	ctrl := tune.NewController(false)
	var layout, packed []uint64
	count := 0
	for _, st := range tuneScript(elems) {
		ctrl.Step()
		ctrl.DecidePath(len(st.ins), len(st.del), len(st.fnd)+1)
		t.TryInsertAll(st.ins) // capacity is sized by the caller; ErrFull would diverge the layout and be caught
		t.DeleteAll(st.del)
		layout = append(layout, t.Snapshot()...)
		packed = append(packed, t.Elements()...)
		count += t.Count()
	}
	return OracleResult{Elements: packed, Layout: layout, Count: count, Trace: ctrl.TraceString()}
}
