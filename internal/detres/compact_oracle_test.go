package detres

import (
	"sort"
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/sequence"
)

func TestOracleGridCompact(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(CompactRunner{Capacity: 4 * cfg.N}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridCompactBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(CompactBulkRunner{Capacity: 4 * cfg.N}, cfg); d != nil {
		t.Fatal(d)
	}
}

// The staged bulk kernels must be observationally identical to the
// per-element atomic path — including the ctrl words, which the bulk
// find stages and the per-element path never pre-touches.
func TestOracleCrossPathCompactBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	a := CompactRunner{Capacity: 4 * cfg.N}
	b := CompactBulkRunner{Capacity: 4 * cfg.N}
	if d := RunCrossOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridShardedCompact(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(ShardedCompactRunner{Capacity: 4 * cfg.N, Shards: 8}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridShardedCompactBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(ShardedCompactBulkRunner{Capacity: 4 * cfg.N, Shards: 8}, cfg); d != nil {
		t.Fatal(d)
	}
}

// The owner-computes kernels' plain stores and plain ctrl writes (with
// their transient serial-delete tombstones) must land in the same
// quiescent (cells, ctrl) bytes as the atomic per-element path with its
// syncCtrl convergence loop.
func TestOracleCrossPathShardedCompactBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	a := ShardedCompactRunner{Capacity: 4 * cfg.N, Shards: 8}
	b := ShardedCompactBulkRunner{Capacity: 4 * cfg.N, Shards: 8}
	if d := RunCrossOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

// The compact table must store exactly the flat table's element set.
func TestOracleCompactMatchesFlatMultiset(t *testing.T) {
	cfg := testOracleConfig(t)
	a := WordRunner{Capacity: 4 * cfg.N}
	b := CompactBulkRunner{Capacity: 4 * cfg.N}
	if d := RunMultisetOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

// CompactTable keys its displacement priority on the full hash, not
// WordTable's raw element order, so the two flat layouts deliberately
// differ cell-for-cell. The layout oracle is instead a canonical
// rebuild: inserting the quiescent element set into a fresh table —
// ascending key order, one goroutine, per-element path, a maximally
// different schedule from the grid's phased parallel replay with its
// deletes — must land in the byte-identical (cells, ctrl) pair, which
// is history independence stated directly.
func TestOracleCompactCanonicalRebuild(t *testing.T) {
	cfg := testOracleConfig(t)
	capacity := 4 * cfg.N
	for _, dist := range cfg.Dists {
		for _, seed := range cfg.Seeds {
			elems := OracleWorkload(dist, cfg.N, seed)
			got := CompactRunner{Capacity: capacity}.Run(elems, 4)
			sorted := append([]uint64(nil), got.Elements...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			ref := core.NewCompactTable[core.SetOps](capacity)
			for _, e := range sorted {
				ref.Insert(e)
			}
			refLayout := append(ref.Snapshot(), ref.CtrlSnapshot()...)
			if len(refLayout) != len(got.Layout) {
				t.Fatalf("%s seed %d: rebuild layout %d words, replay %d", dist, seed, len(refLayout), len(got.Layout))
			}
			for i, c := range refLayout {
				if got.Layout[i] != c {
					t.Fatalf("%s seed %d: quiescent layout word %d = %#x (replay) vs %#x (canonical rebuild)",
						dist, seed, i, got.Layout[i], c)
				}
			}
		}
	}
}

// A compile-time style guard that the six-distribution default grid is
// what the compact oracle rows above actually exercise when not -short.
func TestCompactOracleCoversAllDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("grid shrunk under -short")
	}
	cfg := testOracleConfig(t)
	if len(cfg.Dists) != len(sequence.AllDistributions) {
		t.Fatalf("grid covers %d distributions, want %d", len(cfg.Dists), len(sequence.AllDistributions))
	}
}
