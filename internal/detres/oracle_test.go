package detres

import (
	"strings"
	"sync/atomic"
	"testing"

	"phasehash/internal/chaos"
	"phasehash/internal/hashx"
	"phasehash/internal/sequence"
)

// testOracleConfig shrinks the CI grid under -short so the oracle stays
// a quick gate in the ordinary test run; the full grid (six
// distributions × 8 seeds × 4 worker counts × 5 profiles) is what the
// `-tags chaos` CI job executes.
func testOracleConfig(t *testing.T) OracleConfig {
	cfg := DefaultOracleConfig(1 << 10)
	if testing.Short() {
		cfg.Dists = []sequence.Distribution{sequence.RandomInt, sequence.ExptInt}
		cfg.Seeds = cfg.Seeds[:2]
	}
	return cfg
}

func TestOracleWorkloads(t *testing.T) {
	for _, d := range sequence.AllDistributions {
		elems := OracleWorkload(d, 500, 7)
		if len(elems) != 500 {
			t.Fatalf("%s: got %d elements", d, len(elems))
		}
		for i, e := range elems {
			if e == 0 {
				t.Fatalf("%s: element %d is the reserved empty key", d, i)
			}
		}
	}
}

func TestOracleGridWord(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(WordRunner{Capacity: 4 * cfg.N}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridGrow(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(GrowRunner{Initial: 64}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridWordBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(WordBulkRunner{Capacity: 4 * cfg.N}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridGrowBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(GrowBulkRunner{Initial: 64}, cfg); d != nil {
		t.Fatal(d)
	}
}

// The bulk kernels must be observationally identical to the per-element
// path: every bulk grid cell byte-compared against the per-element
// reference cell (Elements, raw layout, Count). Runs under -tags chaos
// too, where the staging/probe hot paths are fault-injected.
func TestOracleCrossPathWordBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunCrossOracle(WordRunner{Capacity: 4 * cfg.N}, WordBulkRunner{Capacity: 4 * cfg.N}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleCrossPathGrowBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunCrossOracle(GrowRunner{Initial: 64}, GrowBulkRunner{Initial: 64}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridSharded(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(ShardedRunner{Capacity: 4 * cfg.N, Shards: 8}, cfg); d != nil {
		t.Fatal(d)
	}
}

func TestOracleGridShardedBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	if d := RunOracle(ShardedBulkRunner{Capacity: 4 * cfg.N, Shards: 8}, cfg); d != nil {
		t.Fatal(d)
	}
}

// The sharded owner-computes kernels must leave byte-identical shard
// layouts to the per-element atomic path on the same shard count —
// the serial plain-store replay is substitutable for the CAS loops
// precisely because the layout is history-independent. Runs under
// -tags chaos too (the per-element reference path is fault-injected;
// the serial kernels have no CAS to perturb).
func TestOracleCrossPathShardedBulk(t *testing.T) {
	cfg := testOracleConfig(t)
	a := ShardedRunner{Capacity: 4 * cfg.N, Shards: 8}
	b := ShardedBulkRunner{Capacity: 4 * cfg.N, Shards: 8}
	if d := RunCrossOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

// The sharded table stores elements in a different (still
// deterministic) order than the flat table, so the flat-vs-sharded
// relation is multiset equality of Elements plus equal Count — checked
// for the bulk kernels across the whole grid.
func TestOracleShardedMatchesFlatMultiset(t *testing.T) {
	cfg := testOracleConfig(t)
	a := WordRunner{Capacity: 4 * cfg.N}
	b := ShardedBulkRunner{Capacity: 4 * cfg.N, Shards: 8}
	if d := RunMultisetOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

// ndTable is a deliberately broken table: linear probing that claims
// the first empty cell with no displacement ordering (the classic
// history-*dependent* layout). The oracle must catch it: its quiescent
// layout depends on insertion arrival order, which the grid varies via
// worker counts and fault profiles.
type ndTable struct{ cells []uint64 }

func (t *ndTable) insert(e uint64) {
	m := len(t.cells)
	for p := int(hashx.Mix64(e)) & (m - 1); ; p++ {
		i := p & (m - 1)
		c := atomic.LoadUint64(&t.cells[i])
		if c == e {
			return
		}
		if c == 0 {
			if atomic.CompareAndSwapUint64(&t.cells[i], 0, e) {
				return
			}
			p-- // re-read the contested cell
		}
	}
}

type ndRunner struct{ capacity int }

func (r ndRunner) Name() string { return "nd" }

func (r ndRunner) Run(elems []uint64, workers int) OracleResult {
	t := &ndTable{cells: make([]uint64, r.capacity)}
	replayPhases(len(elems), workers,
		func(i int) { t.insert(elems[i]) },
		func(i int) {}) // no delete phase: insertion order alone breaks it
	layout := make([]uint64, len(t.cells))
	copy(layout, t.cells)
	var packed []uint64
	n := 0
	for _, c := range layout {
		if c != 0 {
			packed = append(packed, c)
			n++
		}
	}
	return OracleResult{Elements: packed, Layout: layout, Count: n}
}

func TestOracleCatchesBrokenDisplacementOrder(t *testing.T) {
	cfg := OracleConfig{
		Dists:    []sequence.Distribution{sequence.RandomInt},
		N:        512,
		Seeds:    []uint64{1, 2, 3, 5, 8, 13, 21, 34},
		Workers:  []int{1, 2, 4, 8},
		Profiles: chaos.Profiles,
	}
	d := RunOracle(ndRunner{capacity: 1024}, cfg)
	if d == nil {
		t.Fatal("oracle failed to catch a history-dependent table across the grid")
	}
	msg := d.Error()
	for _, want := range []string{"seed=", "dist=randomSeq-int", "workers=", "profile=", "replay:"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("repro %q missing %q", msg, want)
		}
	}
	if d.MinN > d.N {
		t.Fatalf("minimized n %d exceeds original %d", d.MinN, d.N)
	}
	t.Logf("oracle repro: %s", msg)
}
