package detres

// Epoch-server oracle: the determinism claim extended across the
// serving layer. internal/epoch batches mixed concurrent submissions
// into phase-ordered epochs and flushes them through the sharded bulk
// kernels; its claim is that each epoch's quiescent state is a pure
// function of the admitted multiset — never of submission interleaving,
// worker count, or injected faults. EpochRunner replays a scripted
// epoch trace through a live Server (concurrent submitters, explicit
// Flush barriers, per-epoch snapshots) and EpochRefRunner replays the
// identical trace directly through the bulk kernels, so RunOracle
// proves grid-wide per-epoch byte-identity and RunCrossOracle pins the
// whole scheduler path to the bare kernels.

import (
	"context"
	"fmt"
	"sync"

	"phasehash/internal/chaos"
	"phasehash/internal/core"
	"phasehash/internal/epoch"
)

// epochStep is one scripted epoch: the keys inserted, deleted and
// looked up. Reads never move the quiescent state; they are in the
// script so the server's read phase stays on the replayed path.
type epochStep struct {
	ins []uint64
	del []uint64
	fnd []uint64
}

// ops materializes the step as a flat submission list: inserts, then
// deletes, then finds, then one Elements snapshot op. The list order
// only seeds the striping — the server partitions by phase, so any
// submission interleaving of the same list is equivalent.
func (st epochStep) ops() []scriptedOp {
	ops := make([]scriptedOp, 0, len(st.ins)+len(st.del)+len(st.fnd)+1)
	for _, k := range st.ins {
		ops = append(ops, scriptedOp{epoch.OpInsert, k})
	}
	for _, k := range st.del {
		ops = append(ops, scriptedOp{epoch.OpDelete, k})
	}
	for _, k := range st.fnd {
		ops = append(ops, scriptedOp{epoch.OpFind, k})
	}
	ops = append(ops, scriptedOp{epoch.OpElements, 0})
	return ops
}

// scriptedOp is one submission of the epoch script.
type scriptedOp struct {
	op  epoch.Op
	key uint64
}

// epochScript splits a workload into epochs scripted epochs: each epoch
// inserts its whole element chunk, deletes every third chunk element
// (the replayPhases convention, applied per chunk) and finds every
// fifth. The script depends only on (elems, epochs), so every grid
// cell submits the same per-epoch multiset.
func epochScript(elems []uint64, epochs int) []epochStep {
	if epochs < 1 {
		epochs = 1
	}
	per := (len(elems) + epochs - 1) / epochs
	steps := make([]epochStep, 0, epochs)
	for lo := 0; lo < len(elems); lo += per {
		hi := lo + per
		if hi > len(elems) {
			hi = len(elems)
		}
		chunk := elems[lo:hi]
		st := epochStep{ins: chunk}
		for i := 0; i < len(chunk); i += 3 {
			st.del = append(st.del, chunk[i])
		}
		for i := 0; i < len(chunk); i += 5 {
			st.fnd = append(st.fnd, chunk[i])
		}
		steps = append(steps, st)
	}
	return steps
}

// EpochRunner replays the epoch script through a live epoch.Server:
// `workers` goroutines stripe each epoch's submissions, a Flush drives
// the epoch, and the per-epoch quiescent snapshot is appended to the
// observation. MaxBatch and QueueLimit are sized to the largest epoch
// so no watermark split or admission shed can occur — the admitted
// multiset, the determinism function's input, is exactly the script.
// Chaos profiles perturb the admission, flush and delivery sites
// (SiteEpochAdmit/Flush/Cancel); a delivery fault cancels a future,
// never a table op, so the snapshots must not move.
type EpochRunner struct {
	Capacity int
	Shards   int
	Epochs   int // script epochs (default 4)
}

// Name implements Runner.
func (r EpochRunner) Name() string { return "epoch" }

// Run implements Runner.
func (r EpochRunner) Run(elems []uint64, workers int) OracleResult {
	if workers < 1 {
		workers = 1
	}
	epochs := r.Epochs
	if epochs <= 0 {
		epochs = 4
	}
	steps := epochScript(elems, epochs)
	limit := 1
	for _, st := range steps {
		if n := len(st.ins) + len(st.del) + len(st.fnd) + 1; n > limit {
			limit = n
		}
	}
	limit += 16
	s := epoch.NewServerWith(
		epoch.Config{MaxBatch: limit, QueueLimit: limit},
		core.NewShardedTable[core.SetOps](r.Capacity, r.Shards))
	defer s.Close(context.Background())

	var layout, packed []uint64
	count := 0
	for _, st := range steps {
		ops := st.ops()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if chaos.Enabled {
					chaos.SkewWorker(chaos.SiteParallelWorker)
				}
				for i := w; i < len(ops); i += workers {
					if _, err := s.Submit(context.Background(), ops[i].op, ops[i].key); err != nil {
						// The queue is sized to the script; any admission
						// error here is a harness bug, not a grid outcome.
						panic(fmt.Sprintf("detres: epoch oracle Submit(%v, %#x): %v", ops[i].op, ops[i].key, err))
					}
				}
			}(w)
		}
		wg.Wait()
		s.Flush()
		t := s.Table()
		layout = append(layout, t.Snapshot()...)
		packed = append(packed, t.Elements()...)
		count += t.Count()
	}
	return OracleResult{Elements: packed, Layout: layout, Count: count}
}

// EpochRefRunner replays the same script through the bare bulk kernels:
// per epoch, TryInsertAll then DeleteAll, then the same snapshot. It is
// the epoch server with every moving part removed — no goroutines, no
// admission, no futures — so RunCrossOracle(EpochRefRunner, EpochRunner)
// asserts the whole scheduler path adds nothing to the state function.
type EpochRefRunner struct {
	Capacity int
	Shards   int
	Epochs   int
}

// Name implements Runner.
func (r EpochRefRunner) Name() string { return "epoch-ref" }

// Run implements Runner.
func (r EpochRefRunner) Run(elems []uint64, workers int) OracleResult {
	epochs := r.Epochs
	if epochs <= 0 {
		epochs = 4
	}
	t := core.NewShardedTable[core.SetOps](r.Capacity, r.Shards)
	var layout, packed []uint64
	count := 0
	for _, st := range epochScript(elems, epochs) {
		t.TryInsertAll(st.ins) // capacity is sized by the caller; ErrFull would diverge the layout and be caught
		t.DeleteAll(st.del)
		layout = append(layout, t.Snapshot()...)
		packed = append(packed, t.Elements()...)
		count += t.Count()
	}
	return OracleResult{Elements: packed, Layout: layout, Count: count}
}
