package detres

import (
	"testing"

	"phasehash/internal/sequence"
)

// epochOracleConfig is testOracleConfig with the worker axis capped at
// 4: each epoch-runner cell spins a live server with real submitter
// goroutines per worker, so the 8-worker column buys schedule variety
// the 2- and 4-worker columns already provide, at double the cost.
func epochOracleConfig(t *testing.T) OracleConfig {
	cfg := testOracleConfig(t)
	cfg.Workers = []int{1, 2, 4}
	return cfg
}

// TestOracleGridEpoch is the serving-layer determinism gate: one
// scripted epoch trace replayed through a live epoch.Server across the
// full seed × worker × fault-profile grid, asserting the concatenated
// per-epoch quiescent snapshots are byte-identical in every cell. Under
// -tags chaos the admission, flush and delivery sites are perturbed —
// including forced result cancellations (SiteEpochCancel), which must
// corrupt only futures, never the table.
func TestOracleGridEpoch(t *testing.T) {
	cfg := epochOracleConfig(t)
	if d := RunOracle(EpochRunner{Capacity: 4 * cfg.N, Shards: 8, Epochs: 4}, cfg); d != nil {
		t.Fatal(d)
	}
}

// TestOracleCrossPathEpochServer pins the scheduler to the bare
// kernels: every epoch-server grid cell must match the goroutine-free
// TryInsertAll/DeleteAll replay of the same script, byte for byte,
// epoch by epoch. Any state the serving machinery leaks into the table
// — a shed op reaching a kernel, a split reordering insert/delete
// phases, a cancellation undoing a write — lands here.
func TestOracleCrossPathEpochServer(t *testing.T) {
	cfg := epochOracleConfig(t)
	a := EpochRefRunner{Capacity: 4 * cfg.N, Shards: 8, Epochs: 4}
	b := EpochRunner{Capacity: 4 * cfg.N, Shards: 8, Epochs: 4}
	if d := RunCrossOracle(a, b, cfg); d != nil {
		t.Fatal(d)
	}
}

// TestEpochScriptDeterministic: the script itself (the oracle's ground
// truth) must be a pure function of the workload — same chunks, same
// per-epoch delete/find selections, on repeated derivation.
func TestEpochScriptDeterministic(t *testing.T) {
	elems := OracleWorkload(sequence.RandomInt, 1000, 42)
	a := epochScript(elems, 4)
	b := epochScript(elems, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("epochs: %d and %d, want 4", len(a), len(b))
	}
	total := 0
	for e := range a {
		total += len(a[e].ins)
		if len(a[e].ins) != len(b[e].ins) || len(a[e].del) != len(b[e].del) || len(a[e].fnd) != len(b[e].fnd) {
			t.Fatalf("epoch %d: shapes differ across derivations", e)
		}
		for i := range a[e].ins {
			if a[e].ins[i] != b[e].ins[i] {
				t.Fatalf("epoch %d insert %d differs", e, i)
			}
		}
		if want := (len(a[e].ins) + 2) / 3; len(a[e].del) != want {
			t.Fatalf("epoch %d: %d deletes, want %d (every third)", e, len(a[e].del), want)
		}
	}
	if total != len(elems) {
		t.Fatalf("script covers %d of %d elements", total, len(elems))
	}
}
