// Package detres implements deterministic reservations, the
// speculative-for framework of Blelloch, Fineman, Gibbons and Shun
// ("Internally deterministic parallel algorithms can be fast", PPoPP
// 2012) that the paper's Delaunay-refinement and spanning-forest
// applications are built on.
//
// Iterates 0..n-1 carry priorities equal to their indices. Each round
// takes a prefix of the remaining iterates; every iterate in the prefix
// runs Reserve (announcing its intent on shared state, typically with
// WriteMin keyed by its priority), then every iterate runs Commit, which
// succeeds only if the iterate still holds all its reservations. Failed
// iterates retry in later rounds. Because reservations are
// priority-ordered, the set of winners each round — and therefore the
// entire execution — is deterministic, independent of scheduling.
package detres

import "phasehash/internal/parallel"

// Step defines one speculative iterate.
type Step interface {
	// Reserve announces iterate i's claims. Returning false drops the
	// iterate without a commit attempt (it discovered it has nothing to
	// do).
	Reserve(i int) bool
	// Commit attempts iterate i's action; it must succeed only if i still
	// holds every claim it reserved. Returning false requeues i.
	Commit(i int) bool
}

// Stats reports what a SpeculativeFor execution did.
type Stats struct {
	Rounds    int // reservation/commit rounds executed
	Committed int // iterates whose Commit returned true
	Dropped   int // iterates whose Reserve returned false
}

// SpeculativeFor runs iterates [start, end) to completion with the given
// round granularity (maximum prefix size per round; <= 0 chooses a
// default). It returns execution statistics.
func SpeculativeFor(step Step, start, end, granularity int) Stats {
	if granularity <= 0 {
		granularity = defaultGranularity(end - start)
	}
	var stats Stats
	// active holds the indices still to be done, in priority order.
	active := make([]int, 0, granularity)
	next := start
	keep := make([]bool, 0, granularity)
	for {
		// Top up the prefix with fresh iterates.
		for len(active) < granularity && next < end {
			active = append(active, next)
			next++
		}
		if len(active) == 0 {
			return stats
		}
		stats.Rounds++
		p := len(active)
		keep = keep[:0]
		keep = append(keep, make([]bool, p)...)
		dropped := make([]int, p)
		committed := make([]int, p)
		parallel.ForGrain(p, 1, func(j int) {
			if !step.Reserve(active[j]) {
				dropped[j] = 1
				return
			}
			keep[j] = true
		})
		parallel.ForGrain(p, 1, func(j int) {
			if !keep[j] {
				return
			}
			if step.Commit(active[j]) {
				committed[j] = 1
				keep[j] = false
			}
		})
		for j := 0; j < p; j++ {
			stats.Dropped += dropped[j]
			stats.Committed += committed[j]
		}
		// Retain failed iterates, preserving priority order.
		w := 0
		for j := 0; j < p; j++ {
			if keep[j] {
				active[w] = active[j]
				w++
			}
		}
		active = active[:w]
	}
}

func defaultGranularity(n int) int {
	g := n / 50
	if g < 256 {
		g = 256
	}
	return g
}
