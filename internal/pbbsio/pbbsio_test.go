package pbbsio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"phasehash/internal/geom"
	"phasehash/internal/graph"
	"phasehash/internal/sequence"
)

func TestSequenceIntRoundTrip(t *testing.T) {
	keys := sequence.RandomKeys(1000, 3)
	var buf bytes.Buffer
	if err := WriteSequenceInt(&buf, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSequenceInt(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("len %d, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("differs at %d", i)
		}
	}
}

func TestSequenceIntBadHeader(t *testing.T) {
	if _, err := ReadSequenceInt(strings.NewReader("wrongHeader\n1\n2\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadSequenceInt(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadSequenceInt(strings.NewReader("sequenceInt\n1\nxyz\n")); err == nil {
		t.Fatal("garbage integer accepted")
	}
}

func TestPoints2dRoundTrip(t *testing.T) {
	pts := geom.InCube(500, 7)
	var buf bytes.Buffer
	if err := WritePoints2d(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints2d(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("len %d, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v vs %v (float formatting must round-trip)", i, got[i], pts[i])
		}
	}
}

func TestPoints2dOddCoordinates(t *testing.T) {
	if _, err := ReadPoints2d(strings.NewReader("pbbs_sequencePoint2d\n1.5\n")); err == nil {
		t.Fatal("odd coordinate count accepted")
	}
}

func TestAdjacencyGraphRoundTrip(t *testing.T) {
	g := graph.Random(300, 4, 9)
	var buf bytes.Buffer
	if err := WriteAdjacencyGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacencyGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

func TestAdjacencyGraphValidation(t *testing.T) {
	cases := []string{
		"AdjacencyGraph\n2\n2\n0\n1\n1\n5\n", // edge target out of range
		"AdjacencyGraph\n2\n2\n0\n9\n1\n1\n", // offset out of range
		"AdjacencyGraph\n-1\n0\n",            // negative n
		"AdjacencyGraph\n2\n2\n1\n0\n0\n0\n", // decreasing offsets
		"AdjacencyGraph\n2\n",                // truncated
	}
	for i, c := range cases {
		if _, err := ReadAdjacencyGraph(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted invalid input", i)
		}
	}
}

func TestEdgeArrayRoundTrip(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 5, V: 2}, {U: 100000, V: 99999}}
	var buf bytes.Buffer
	if err := WriteEdgeArray(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("len %d", len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestQuickSequenceRoundTrip(t *testing.T) {
	f := func(keys []uint64) bool {
		var buf bytes.Buffer
		if err := WriteSequenceInt(&buf, keys); err != nil {
			return false
		}
		got, err := ReadSequenceInt(&buf)
		if err != nil || len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
