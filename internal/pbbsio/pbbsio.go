// Package pbbsio reads and writes the Problem Based Benchmark Suite's
// text file formats, so the reproduction can exchange inputs with the
// original PBBS tools (and the paper's exact input files, where
// available) instead of its built-in generators:
//
//	sequenceInt      "sequenceInt" header, one integer per line
//	sequencePoint2d  "pbbs_sequencePoint2d" header, "x y" per line
//	AdjacencyGraph   "AdjacencyGraph" header, vertex offsets then edges
//	EdgeArray        "EdgeArray" header, "u v" per line
package pbbsio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"phasehash/internal/geom"
	"phasehash/internal/graph"
)

// Format headers used by PBBS.
const (
	headerSequenceInt = "sequenceInt"
	headerPoint2d     = "pbbs_sequencePoint2d"
	headerAdjGraph    = "AdjacencyGraph"
	headerEdgeArray   = "EdgeArray"
)

// WriteSequenceInt writes keys in PBBS sequenceInt format.
func WriteSequenceInt(w io.Writer, keys []uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, headerSequenceInt); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintln(bw, k); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSequenceInt parses a PBBS sequenceInt file.
func ReadSequenceInt(r io.Reader) ([]uint64, error) {
	sc := newScanner(r)
	if err := sc.expectHeader(headerSequenceInt); err != nil {
		return nil, err
	}
	var out []uint64
	for sc.scan() {
		v, err := strconv.ParseUint(sc.text(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pbbsio: bad integer %q: %v", sc.text(), err)
		}
		out = append(out, v)
	}
	return out, sc.err()
}

// WritePoints2d writes points in PBBS pbbs_sequencePoint2d format.
func WritePoints2d(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, headerPoint2d); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%v %v\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints2d parses a PBBS pbbs_sequencePoint2d file.
func ReadPoints2d(r io.Reader) ([]geom.Point, error) {
	sc := newScanner(r)
	if err := sc.expectHeader(headerPoint2d); err != nil {
		return nil, err
	}
	var out []geom.Point
	for sc.scan() {
		x, err := strconv.ParseFloat(sc.text(), 64)
		if err != nil {
			return nil, fmt.Errorf("pbbsio: bad coordinate %q", sc.text())
		}
		if !sc.scan() {
			return nil, fmt.Errorf("pbbsio: odd number of coordinates")
		}
		y, err := strconv.ParseFloat(sc.text(), 64)
		if err != nil {
			return nil, fmt.Errorf("pbbsio: bad coordinate %q", sc.text())
		}
		out = append(out, geom.Point{X: x, Y: y})
	}
	return out, sc.err()
}

// WriteAdjacencyGraph writes g in PBBS AdjacencyGraph format: header,
// n, m, n vertex offsets, m edge targets.
func WriteAdjacencyGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	n, m := g.NumVertices(), g.NumEdges()
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", headerAdjGraph, n, m); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if _, err := fmt.Fprintln(bw, g.Offsets[v]); err != nil {
			return err
		}
	}
	for _, u := range g.Adj {
		if _, err := fmt.Fprintln(bw, u); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAdjacencyGraph parses a PBBS AdjacencyGraph file.
func ReadAdjacencyGraph(r io.Reader) (*graph.Graph, error) {
	sc := newScanner(r)
	if err := sc.expectHeader(headerAdjGraph); err != nil {
		return nil, err
	}
	n, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	m, err := sc.nextInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("pbbsio: negative sizes n=%d m=%d", n, m)
	}
	g := &graph.Graph{
		Offsets: make([]int64, n+1),
		Adj:     make([]uint32, m),
	}
	for v := 0; v < n; v++ {
		o, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if o < 0 || o > m {
			return nil, fmt.Errorf("pbbsio: offset %d out of range", o)
		}
		g.Offsets[v] = int64(o)
	}
	g.Offsets[n] = int64(m)
	for i := 0; i < m; i++ {
		u, err := sc.nextInt()
		if err != nil {
			return nil, err
		}
		if u < 0 || u >= n {
			return nil, fmt.Errorf("pbbsio: edge target %d out of range", u)
		}
		g.Adj[i] = uint32(u)
	}
	// Offsets must be non-decreasing.
	for v := 0; v < n; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return nil, fmt.Errorf("pbbsio: offsets decrease at %d", v)
		}
	}
	return g, nil
}

// WriteEdgeArray writes an edge list in PBBS EdgeArray format.
func WriteEdgeArray(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, headerEdgeArray); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeArray parses a PBBS EdgeArray file.
func ReadEdgeArray(r io.Reader) ([]graph.Edge, error) {
	sc := newScanner(r)
	if err := sc.expectHeader(headerEdgeArray); err != nil {
		return nil, err
	}
	var out []graph.Edge
	for sc.scan() {
		u, err := strconv.ParseUint(sc.text(), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pbbsio: bad endpoint %q", sc.text())
		}
		if !sc.scan() {
			return nil, fmt.Errorf("pbbsio: dangling endpoint")
		}
		v, err := strconv.ParseUint(sc.text(), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pbbsio: bad endpoint %q", sc.text())
		}
		out = append(out, graph.Edge{U: uint32(u), V: uint32(v)})
	}
	return out, sc.err()
}

// scanner wraps bufio.Scanner with word splitting and header handling.
type scanner struct {
	sc *bufio.Scanner
	e  error
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	sc.Split(bufio.ScanWords)
	return &scanner{sc: sc}
}

func (s *scanner) scan() bool   { return s.sc.Scan() }
func (s *scanner) text() string { return s.sc.Text() }
func (s *scanner) err() error {
	if s.e != nil {
		return s.e
	}
	return s.sc.Err()
}

func (s *scanner) expectHeader(want string) error {
	if !s.scan() {
		return fmt.Errorf("pbbsio: empty input, want %q header", want)
	}
	if s.text() != want {
		return fmt.Errorf("pbbsio: header %q, want %q", s.text(), want)
	}
	return nil
}

func (s *scanner) nextInt() (int, error) {
	if !s.scan() {
		return 0, fmt.Errorf("pbbsio: unexpected end of input")
	}
	v, err := strconv.Atoi(s.text())
	if err != nil {
		return 0, fmt.Errorf("pbbsio: bad integer %q", s.text())
	}
	return v, nil
}
