//go:build !obs

package obs

import "net"

// Serve is unavailable without the obs tag (ErrDisabled). This stub
// also keeps net/http out of untagged binaries: the live Serve lives
// behind the tag, so importing obs costs library consumers nothing.
func Serve(addr string) (net.Addr, error) { return nil, ErrDisabled }
