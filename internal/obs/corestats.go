package obs

import (
	"fmt"
	"strings"
)

// This file is the build-tag-free half of the always-on counter core:
// the merged snapshot type and its derived gauges. The core is the
// minimal telemetry subset promoted out of the obs build tag so the
// self-tuning layer (internal/tune) has schedule-independent inputs in
// every binary: striped operation/probe-step counters, the sharded
// bulk-kernel imbalance gauge, and the pool dispatch counters. Nothing
// else moved — histograms, CAS/displacement accounting, phase spans and
// the debug endpoint stay behind -tags obs.
//
// The core has its own off switch, inverted relative to obs: it is ON
// in default builds and compiled out with -tags nostats (the overhead
// gate's A/B build). Hooks are named Core* — never Record* — so `make
// obs-sizecheck`'s assertion that untagged binaries carry no Record*
// symbol keeps holding verbatim, and a parallel check asserts the Core*
// symbols vanish under -tags nostats.
//
// Determinism contract (what internal/tune may consume): every CoreStats
// field is a sum or a max over per-completed-operation contributions, so
// for a fixed multiset of completed operations the merged totals are
// independent of schedule, worker count and stripe assignment — sums and
// maxes are commutative. Probe-step counters are the one exception:
// on the *atomic* probe paths concurrent CAS traffic can lengthen
// individual probes, so step totals are schedule-dependent there (they
// are schedule-independent on the serial owner-computes paths). The
// tuning policies therefore key off op counts, batch sizes and the
// imbalance gauge only; the step counters exist for operators (phload
// soak summaries) and for the obs-free mean-probe gauge.
type CoreStats struct {
	// Probe-path operation and step totals (WordTable atomic + serial
	// owner-computes loops; bulk kernels publish once per block).
	InsertOps        uint64
	InsertProbeSteps uint64
	FindOps          uint64
	FindProbeSteps   uint64
	FindHits         uint64
	DeleteOps        uint64
	DeleteProbeSteps uint64

	// Sharded owner-computes bulk kernels (flat and compact shards).
	ShardBulkCalls uint64
	ShardBulkRuns  uint64
	ShardBulkElems uint64

	// MaxShardImbalancePm is the worst per-mille shard imbalance seen by
	// any sharded bulk partition: max-run-length * shards * 1000 / total
	// (1000 = perfectly balanced). A max over schedule-independent
	// per-call values, so itself schedule-independent for a fixed multiset
	// of bulk calls.
	MaxShardImbalancePm uint64

	// Parallel pool dispatch counters: pooled loop dispatches, blocks
	// dispatched and items (iterations) covered. Their ratios are the
	// tuner's dispatch-cost signal: items/dispatch says how big the loops
	// are, blocks/dispatch how finely they were split.
	ParDispatches uint64
	ParBlocks     uint64
	ParItems      uint64
}

// OpsTotal returns the total probe-path operations recorded.
func (s CoreStats) OpsTotal() uint64 { return s.InsertOps + s.FindOps + s.DeleteOps }

// FindSharePm returns finds per mille of all probe-path operations
// (0 when none were recorded) — the op-mix input of the flat-vs-compact
// and shard policies, integer per-mille like every tuner input.
func (s CoreStats) FindSharePm() uint64 {
	total := s.OpsTotal()
	if total == 0 {
		return 0
	}
	return s.FindOps * 1000 / total
}

// HitSharePm returns find hits per mille of find operations.
func (s CoreStats) HitSharePm() uint64 {
	if s.FindOps == 0 {
		return 0
	}
	return s.FindHits * 1000 / s.FindOps
}

// MeanProbePm returns the mean probe distance of the class ("insert",
// "find", "delete") in per-mille (1500 = 1.5 cells), integer arithmetic.
func (s CoreStats) MeanProbePm(class string) uint64 {
	var steps, ops uint64
	switch class {
	case "insert":
		steps, ops = s.InsertProbeSteps, s.InsertOps
	case "find":
		steps, ops = s.FindProbeSteps, s.FindOps
	case "delete":
		steps, ops = s.DeleteProbeSteps, s.DeleteOps
	}
	if ops == 0 {
		return 0
	}
	return steps * 1000 / ops
}

// ItemsPerDispatch returns the mean parallel-loop length per pooled
// dispatch (0 when none were recorded) — the grain policy's input.
func (s CoreStats) ItemsPerDispatch() uint64 {
	if s.ParDispatches == 0 {
		return 0
	}
	return s.ParItems / s.ParDispatches
}

// Sub returns the window s minus prev for the additive counters; the
// MaxShardImbalancePm gauge keeps s's value (a cumulative max cannot be
// windowed). Use it for per-round deltas in soak reporting.
func (s CoreStats) Sub(prev CoreStats) CoreStats {
	return CoreStats{
		InsertOps:           s.InsertOps - prev.InsertOps,
		InsertProbeSteps:    s.InsertProbeSteps - prev.InsertProbeSteps,
		FindOps:             s.FindOps - prev.FindOps,
		FindProbeSteps:      s.FindProbeSteps - prev.FindProbeSteps,
		FindHits:            s.FindHits - prev.FindHits,
		DeleteOps:           s.DeleteOps - prev.DeleteOps,
		DeleteProbeSteps:    s.DeleteProbeSteps - prev.DeleteProbeSteps,
		ShardBulkCalls:      s.ShardBulkCalls - prev.ShardBulkCalls,
		ShardBulkRuns:       s.ShardBulkRuns - prev.ShardBulkRuns,
		ShardBulkElems:      s.ShardBulkElems - prev.ShardBulkElems,
		MaxShardImbalancePm: s.MaxShardImbalancePm,
		ParDispatches:       s.ParDispatches - prev.ParDispatches,
		ParBlocks:           s.ParBlocks - prev.ParBlocks,
		ParItems:            s.ParItems - prev.ParItems,
	}
}

// String renders a compact one-line summary (phload soak summaries and
// phserver drain reports).
func (s CoreStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: insert ops=%d mean-probe=%d.%03d; find ops=%d hits=%d mean-probe=%d.%03d; delete ops=%d",
		s.InsertOps, s.MeanProbePm("insert")/1000, s.MeanProbePm("insert")%1000,
		s.FindOps, s.FindHits, s.MeanProbePm("find")/1000, s.MeanProbePm("find")%1000,
		s.DeleteOps)
	if s.ShardBulkCalls > 0 {
		fmt.Fprintf(&b, "; shard-bulk calls=%d runs=%d elems=%d imbalance=%d.%03dx",
			s.ShardBulkCalls, s.ShardBulkRuns, s.ShardBulkElems,
			s.MaxShardImbalancePm/1000, s.MaxShardImbalancePm%1000)
	}
	if s.ParDispatches > 0 {
		fmt.Fprintf(&b, "; pool dispatches=%d blocks=%d items/dispatch=%d",
			s.ParDispatches, s.ParBlocks, s.ItemsPerDispatch())
	}
	return b.String()
}
