package obs

import (
	"sync"
	"testing"
)

// TestCoreSnapshotMerge asserts the core stripes merge to exact totals
// regardless of which stripe recorded what: concurrent hooks over
// scattered stripes must sum to the serial expectation.
func TestCoreSnapshotMerge(t *testing.T) {
	if !CoreEnabled {
		t.Skip("built with -tags nostats")
	}
	CoreReset()
	const goroutines = 8
	const per = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				stripe := g*per + i
				CoreInsert(stripe, 1, 2)
				CoreFind(stripe, 1, 3, uint64(i%2))
				CoreDelete(stripe, 1, 1)
			}
		}(g)
	}
	wg.Wait()
	s := CoreSnapshot()
	total := uint64(goroutines * per)
	if s.InsertOps != total || s.InsertProbeSteps != 2*total {
		t.Fatalf("insert ops=%d steps=%d, want %d/%d", s.InsertOps, s.InsertProbeSteps, total, 2*total)
	}
	if s.FindOps != total || s.FindProbeSteps != 3*total || s.FindHits != total/2 {
		t.Fatalf("find ops=%d steps=%d hits=%d, want %d/%d/%d",
			s.FindOps, s.FindProbeSteps, s.FindHits, total, 3*total, total/2)
	}
	if s.DeleteOps != total || s.DeleteProbeSteps != total {
		t.Fatalf("delete ops=%d steps=%d, want %d/%d", s.DeleteOps, s.DeleteProbeSteps, total, total)
	}
	if s.OpsTotal() != 3*total {
		t.Fatalf("OpsTotal = %d, want %d", s.OpsTotal(), 3*total)
	}
	if got := s.FindSharePm(); got != 333 {
		t.Fatalf("FindSharePm = %d, want 333", got)
	}
	if got := s.MeanProbePm("find"); got != 3000 {
		t.Fatalf("MeanProbePm(find) = %d, want 3000", got)
	}
	CoreReset()
	if s := CoreSnapshot(); s.OpsTotal() != 0 || s.MaxShardImbalancePm != 0 {
		t.Fatalf("CoreReset left %+v", s)
	}
}

// TestCoreShardBulkGauge asserts the imbalance gauge is the max over
// calls of max-run * shards * 1000 / total, independent of call order.
func TestCoreShardBulkGauge(t *testing.T) {
	if !CoreEnabled {
		t.Skip("built with -tags nostats")
	}
	CoreReset()
	// 4 shards, runs 10/10/10/10 -> balanced, gauge 1000.
	CoreShardBulk([]int{0, 10, 20, 30, 40})
	// 4 shards, runs 25/5/5/5 -> 25*4*1000/40 = 2500.
	CoreShardBulk([]int{0, 25, 30, 35, 40})
	// Balanced again: the gauge is a running max, must stay 2500.
	CoreShardBulk([]int{0, 10, 20, 30, 40})
	s := CoreSnapshot()
	if s.ShardBulkCalls != 3 || s.ShardBulkRuns != 12 || s.ShardBulkElems != 120 {
		t.Fatalf("calls=%d runs=%d elems=%d, want 3/12/120", s.ShardBulkCalls, s.ShardBulkRuns, s.ShardBulkElems)
	}
	if s.MaxShardImbalancePm != 2500 {
		t.Fatalf("MaxShardImbalancePm = %d, want 2500", s.MaxShardImbalancePm)
	}
	if CoreMaxShardImbalancePm() != 2500 {
		t.Fatalf("CoreMaxShardImbalancePm = %d, want 2500", CoreMaxShardImbalancePm())
	}
	// Degenerate offsets must not divide by zero or move the gauge.
	CoreShardBulk([]int{0})
	CoreShardBulk([]int{0, 0, 0})
	if got := CoreSnapshot().MaxShardImbalancePm; got != 2500 {
		t.Fatalf("gauge moved to %d on degenerate offsets", got)
	}
	CoreReset()
}

// TestCoreStatsSub asserts windowed deltas subtract the additive fields
// and keep the gauge.
func TestCoreStatsSub(t *testing.T) {
	prev := CoreStats{InsertOps: 10, FindOps: 4, ParItems: 100, MaxShardImbalancePm: 1200}
	cur := CoreStats{InsertOps: 25, FindOps: 9, ParItems: 350, MaxShardImbalancePm: 1800}
	d := cur.Sub(prev)
	if d.InsertOps != 15 || d.FindOps != 5 || d.ParItems != 250 {
		t.Fatalf("Sub additive fields wrong: %+v", d)
	}
	if d.MaxShardImbalancePm != 1800 {
		t.Fatalf("Sub gauge = %d, want 1800 (keeps the later max)", d.MaxShardImbalancePm)
	}
	if got := d.ItemsPerDispatch(); got != 0 {
		t.Fatalf("ItemsPerDispatch with zero dispatches = %d, want 0", got)
	}
}
