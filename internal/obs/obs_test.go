package obs

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct{ d, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 13, 14}, {1 << 14, 15}, {1 << 20, NumProbeBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.d); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's lower edge must map back into that bucket.
	for b := 0; b < NumProbeBuckets; b++ {
		if got := BucketOf(BucketLo(b)); got != b {
			t.Errorf("BucketOf(BucketLo(%d)=%d) = %d", b, BucketLo(b), got)
		}
	}
}

// TestHistogramMergePropertyAcrossWorkers is the merge property the
// per-worker (and per-stripe) sink design rests on: partition one op
// stream across k histograms any way at all, merge them, and the result
// is the serial histogram of the whole stream. Exercised across several
// worker counts and partitions.
func TestHistogramMergePropertyAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stream := make([]int, 10000)
	for i := range stream {
		// Mix short and heavy-tailed probe distances.
		if rng.Intn(4) == 0 {
			stream[i] = rng.Intn(1 << 12)
		} else {
			stream[i] = rng.Intn(6)
		}
	}
	var serial Histogram
	for _, d := range stream {
		serial.Add(d)
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		parts := make([]Histogram, workers)
		// Striped partition (the shape replayPhases uses).
		for i, d := range stream {
			parts[i%workers].Add(d)
		}
		var merged Histogram
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged != serial {
			t.Fatalf("workers=%d: merged %v != serial %v", workers, merged, serial)
		}
		// Random partition too: merge must not care how ops were split.
		for i := range parts {
			parts[i] = Histogram{}
		}
		for _, d := range stream {
			parts[rng.Intn(workers)].Add(d)
		}
		merged = Histogram{}
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged != serial {
			t.Fatalf("workers=%d (random split): merged %v != serial %v", workers, merged, serial)
		}
	}
	if serial.Total() != uint64(len(stream)) {
		t.Fatalf("Total = %d, want %d", serial.Total(), len(stream))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	// 99 ops at distance 0, one at distance 5 ([4,8) → upper edge 7).
	for i := 0; i < 99; i++ {
		h.Add(0)
	}
	h.Add(5)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("p50 = %d, want 0", got)
	}
	if got := h.Quantile(0.999); got != 7 {
		t.Fatalf("p99.9 = %d, want 7 (upper edge of [4,8))", got)
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCounters; c++ {
		name := Counter(c).String()
		if name == "" || name == "unknown-counter" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	var s Snapshot
	s.Enabled = Enabled
	s.Counters[CtrInsertOps] = 10
	s.Counters[CtrInsertProbeSteps] = 25
	s.Counters[CtrInsertCASFailures] = 2
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"insert-ops":10`, `"cas_retry_rate":0.2`, `"grow-migrate-cells":0`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, data)
		}
	}
	if mean := s.MeanProbe("insert"); mean != 2.5 {
		t.Errorf("MeanProbe = %v, want 2.5", mean)
	}
	str := s.String()
	if Enabled && !strings.Contains(str, "insert ops=10") {
		t.Errorf("String() = %q", str)
	}
	if !Enabled && !strings.Contains(str, "off") {
		t.Errorf("String() without tag = %q, want the off notice", str)
	}
}

// TestDisabledSnapshotIsZero pins the untagged contract: TakeSnapshot
// reports Enabled == false and all-zero counters, and the no-op hooks
// stay no-ops.
func TestDisabledSnapshotIsZero(t *testing.T) {
	if Enabled {
		t.Skip("obs build: live sinks tested in obs_on_test.go")
	}
	RecordInsert(1, 2, 3, 4, 5)
	RecordFind(1, 2, true)
	RecordDelete(1, 2, 3, 4)
	sp := PhaseStart("insert")
	sp.AddOp()
	PhaseEnd(sp)
	s := TakeSnapshot()
	if s.Enabled {
		t.Fatal("untagged snapshot claims Enabled")
	}
	if got := s.Ops(); got != (OpCounts{}) {
		t.Fatalf("untagged op counts %+v, want zero", got)
	}
	if _, err := Serve("127.0.0.1:0"); err != ErrDisabled {
		t.Fatalf("Serve error = %v, want ErrDisabled", err)
	}
}
