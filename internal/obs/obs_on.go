//go:build obs

package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"phasehash/internal/atomicx"
)

// Enabled reports whether this binary was built with the obs tag.
const Enabled = true

const (
	// numStripes is the number of padded counter sinks. Table-path hooks
	// pick a stripe from the operation's own home-cell index, pool hooks
	// from the worker id; either way concurrent increments spread across
	// distinct cache lines. Must be a power of two.
	numStripes = 64
	stripeMask = numStripes - 1

	// maxWorkers bounds the per-worker block counters (indexed modulo).
	maxWorkers = 256

	// TimelineCap bounds the recorded phase timeline; further spans are
	// counted in SpansDropped instead of growing without bound during
	// soaks.
	TimelineCap = 4096

	cacheLine = 64
	sinkBytes = NumCounters*8 + 3*NumProbeBuckets*8
)

// sink is one stripe of counters plus per-class probe histograms,
// padded out to a cache-line multiple so adjacent stripes never share a
// line. All fields are atomics: stripes reduce contention, they do not
// guarantee exclusivity.
type sink struct {
	counters [NumCounters]atomic.Uint64
	insertH  [NumProbeBuckets]atomic.Uint64
	findH    [NumProbeBuckets]atomic.Uint64
	deleteH  [NumProbeBuckets]atomic.Uint64
	_        [(cacheLine - sinkBytes%cacheLine) % cacheLine]byte
}

var (
	sinks        [numStripes]sink
	workerBlocks [maxWorkers]atomicx.PaddedCounter

	// shardImbalancePm is a WriteMax gauge (per-mille, 1000 = balanced).
	shardImbalancePm uint64

	// epochQueueDepth is a WriteMax gauge of the epoch admission queue.
	epochQueueDepth uint64

	// epochLatencyH is the admit-to-complete latency histogram in µs
	// (shared, atomic buckets: epoch completions are batched, far less
	// frequent than per-probe hooks, so striping buys nothing).
	epochLatencyH [NumProbeBuckets]atomic.Uint64

	processStart = time.Now()

	timeline struct {
		mu      sync.Mutex
		spans   []PhaseSpan
		dropped uint64
	}
)

// RecordInsert publishes the local tallies of one completed insert
// operation: probe steps walked, CAS attempts/failures and
// lower-priority displacements carried. stripe is any value already at
// hand that varies across concurrent operations (the home-cell index).
func RecordInsert(stripe int, steps, casAttempts, casFailures, displacements uint64) {
	s := &sinks[stripe&stripeMask]
	s.counters[CtrInsertOps].Add(1)
	s.counters[CtrInsertProbeSteps].Add(steps)
	s.counters[CtrInsertCASAttempts].Add(casAttempts)
	s.counters[CtrInsertCASFailures].Add(casFailures)
	s.counters[CtrInsertDisplacements].Add(displacements)
	s.insertH[BucketOf(int(steps))].Add(1)
}

// RecordFind publishes one completed find operation.
func RecordFind(stripe int, steps uint64, hit bool) {
	s := &sinks[stripe&stripeMask]
	s.counters[CtrFindOps].Add(1)
	s.counters[CtrFindProbeSteps].Add(steps)
	if hit {
		s.counters[CtrFindHits].Add(1)
	}
	s.findH[BucketOf(int(steps))].Add(1)
}

// RecordCompactFind publishes one completed compact-table find: probe
// steps (slot distance to the verdict lane), ctrl words loaded by the
// SWAR scanner and fingerprint false positives (candidates whose cell
// held a different key). Op/step/hit tallies flow into the shared find
// counters so compact and flat runs stay comparable.
func RecordCompactFind(stripe int, steps, ctrlWords, falsePos uint64, hit bool) {
	s := &sinks[stripe&stripeMask]
	s.counters[CtrFindOps].Add(1)
	s.counters[CtrFindProbeSteps].Add(steps)
	if hit {
		s.counters[CtrFindHits].Add(1)
	}
	s.counters[CtrFindCtrlWords].Add(ctrlWords)
	s.counters[CtrFindFPFalse].Add(falsePos)
	s.findH[BucketOf(int(steps))].Add(1)
}

// RecordDelete publishes one completed delete operation: victim-scan
// steps, replacement CASes won (the recursive hole-fill depth) and
// replacement CASes lost to concurrent deletes.
func RecordDelete(stripe int, steps, replacements, casFailures uint64) {
	s := &sinks[stripe&stripeMask]
	s.counters[CtrDeleteOps].Add(1)
	s.counters[CtrDeleteProbeSteps].Add(steps)
	s.counters[CtrDeleteReplacements].Add(replacements)
	s.counters[CtrDeleteCASFailures].Add(casFailures)
	s.deleteH[BucketOf(int(steps))].Add(1)
}

// RecordGrowEvent counts one published table doubling.
func RecordGrowEvent() {
	sinks[0].counters[CtrGrowEvents].Add(1)
}

// RecordMigrate counts cells moved old -> new by one migration quantum.
func RecordMigrate(stripe int, moved uint64) {
	sinks[stripe&stripeMask].counters[CtrGrowCellsMoved].Add(moved)
}

// RecordDispatch counts one pooled loop dispatch and its block total.
func RecordDispatch(nblocks int) {
	s := &sinks[0]
	s.counters[CtrParDispatches].Add(1)
	s.counters[CtrParBlocks].Add(uint64(nblocks))
}

// RecordWorkerBlocks credits blocks executed to pool worker `worker`
// (index 0 is the dispatching goroutine).
func RecordWorkerBlocks(worker int, blocks uint64) {
	workerBlocks[worker%maxWorkers].Add(blocks)
}

// RecordWake counts one consumed wake token; stale means the woken
// worker found the job already drained.
func RecordWake(stale bool) {
	s := &sinks[1]
	s.counters[CtrParWakes].Add(1)
	if stale {
		s.counters[CtrParStaleWakes].Add(1)
	}
}

// RecordCursorMiss counts cursor draws past the last block of a job.
func RecordCursorMiss(n uint64) {
	sinks[2].counters[CtrParCursorMiss].Add(n)
}

// RecordShardBulk publishes one sharded bulk-kernel invocation from its
// partition offsets (len = shards+1): run count, element total, and the
// imbalance gauge max-run * shards / total (per-mille).
func RecordShardBulk(offsets []int) {
	shards := len(offsets) - 1
	if shards <= 0 {
		return
	}
	total := offsets[shards] - offsets[0]
	runs, maxRun := 0, 0
	for i := 0; i < shards; i++ {
		n := offsets[i+1] - offsets[i]
		if n > 0 {
			runs++
		}
		if n > maxRun {
			maxRun = n
		}
	}
	s := &sinks[3]
	s.counters[CtrShardBulkCalls].Add(1)
	s.counters[CtrShardBulkRuns].Add(uint64(runs))
	s.counters[CtrShardBulkElems].Add(uint64(total))
	if total > 0 {
		atomicx.WriteMax(&shardImbalancePm, uint64(maxRun)*uint64(shards)*1000/uint64(total))
	}
}

// RecordEpochAdmit publishes one admitted epoch op and the admission
// queue depth it observed (fed to the max-depth gauge).
func RecordEpochAdmit(depth int) {
	sinks[4].counters[CtrEpochAdmitted].Add(1)
	atomicx.WriteMax(&epochQueueDepth, uint64(depth))
}

// RecordEpochShed counts one shed op: overload = refused at admission,
// otherwise shed at flush time for an expired deadline.
func RecordEpochShed(overload bool) {
	if overload {
		sinks[4].counters[CtrEpochShedOverload].Add(1)
	} else {
		sinks[4].counters[CtrEpochShedDeadline].Add(1)
	}
}

// RecordEpochCancel counts one cancelled result delivery (client ctx
// cancellation or chaos-injected mid-epoch cancellation).
func RecordEpochCancel() {
	sinks[4].counters[CtrEpochCancelled].Add(1)
}

// RecordEpochFlush publishes one flushed epoch: ops executed, whether
// the epoch came from splitting an oversized pending batch, and how
// many insert futures resolved with ErrFull.
func RecordEpochFlush(ops int, split bool, insertFull int) {
	s := &sinks[5]
	s.counters[CtrEpochFlushes].Add(1)
	s.counters[CtrEpochFlushOps].Add(uint64(ops))
	if split {
		s.counters[CtrEpochSplits].Add(1)
	}
	if insertFull > 0 {
		s.counters[CtrEpochInsertFull].Add(uint64(insertFull))
	}
}

// RecordEpochLatency adds one op's admit-to-complete latency (µs) to
// the epoch latency histogram.
func RecordEpochLatency(us uint64) {
	epochLatencyH[BucketOf(int(us))].Add(1)
}

// ActiveSpan is an in-progress phase-timeline span: one maximal
// interval of continuous phase activity on a PhaseGuard. It doubles as
// a runtime/trace user task, so `go tool trace` shows phases under
// User-defined tasks. A nil *ActiveSpan is safe for all methods.
type ActiveSpan struct {
	name  string
	start int64
	ops   atomic.Uint64
	task  *trace.Task
}

// AddOp counts one guarded operation inside the span.
func (sp *ActiveSpan) AddOp() {
	if sp != nil {
		sp.ops.Add(1)
	}
}

// PhaseStart opens a span for the named phase and starts the matching
// trace task. Phase starts and ends may occur on different goroutines
// (whichever Enter claimed idle, whichever Exit was last out), which is
// why spans are trace *tasks*, not goroutine-bound regions.
func PhaseStart(name string) *ActiveSpan {
	sp := &ActiveSpan{name: name, start: int64(time.Since(processStart))}
	_, sp.task = trace.NewTask(context.Background(), "phase:"+name)
	return sp
}

// PhaseEnd closes the span, ends its trace task and appends it to the
// timeline (bounded by TimelineCap).
func PhaseEnd(sp *ActiveSpan) {
	if sp == nil {
		return
	}
	end := int64(time.Since(processStart))
	if sp.task != nil {
		sp.task.End()
	}
	timeline.mu.Lock()
	if len(timeline.spans) < TimelineCap {
		timeline.spans = append(timeline.spans, PhaseSpan{
			Phase: sp.name, StartNs: sp.start, EndNs: end, Ops: sp.ops.Load(),
		})
	} else {
		timeline.dropped++
	}
	timeline.mu.Unlock()
}

// TakeSnapshot merges every stripe into one deterministic Snapshot.
// Merging is pure addition, so the result does not depend on which
// stripe (or worker) recorded what. Callers should take snapshots at
// quiescence; a snapshot raced with live operations is still safe, just
// torn across counters.
func TakeSnapshot() Snapshot {
	snap := Snapshot{Enabled: true}
	for i := range sinks {
		s := &sinks[i]
		for c := 0; c < NumCounters; c++ {
			snap.Counters[c] += s.counters[c].Load()
		}
		for b := 0; b < NumProbeBuckets; b++ {
			snap.InsertProbes[b] += s.insertH[b].Load()
			snap.FindProbes[b] += s.findH[b].Load()
			snap.DeleteProbes[b] += s.deleteH[b].Load()
		}
	}
	snap.MaxShardImbalancePm = atomicx.Load(&shardImbalancePm)
	snap.MaxEpochQueueDepth = atomicx.Load(&epochQueueDepth)
	for b := 0; b < NumProbeBuckets; b++ {
		snap.EpochLatency[b] = epochLatencyH[b].Load()
	}
	last := -1
	var blocks [maxWorkers]uint64
	for i := range workerBlocks {
		if v := workerBlocks[i].Load(); v != 0 {
			blocks[i] = v
			last = i
		}
	}
	if last >= 0 {
		snap.WorkerBlocks = append([]uint64(nil), blocks[:last+1]...)
	}
	timeline.mu.Lock()
	snap.Spans = append([]PhaseSpan(nil), timeline.spans...)
	snap.SpansDropped = timeline.dropped
	timeline.mu.Unlock()
	return snap
}

// Reset zeroes every sink, the worker-block counters, the imbalance
// gauge and the timeline. Call it between measured sections (phbench
// resets before each cell so per-distribution stats don't bleed).
func Reset() {
	for i := range sinks {
		s := &sinks[i]
		for c := 0; c < NumCounters; c++ {
			s.counters[c].Store(0)
		}
		for b := 0; b < NumProbeBuckets; b++ {
			s.insertH[b].Store(0)
			s.findH[b].Store(0)
			s.deleteH[b].Store(0)
		}
	}
	for i := range workerBlocks {
		workerBlocks[i].Store(0)
	}
	atomicx.Store(&shardImbalancePm, 0)
	atomicx.Store(&epochQueueDepth, 0)
	for b := range epochLatencyH {
		epochLatencyH[b].Store(0)
	}
	timeline.mu.Lock()
	timeline.spans = nil
	timeline.dropped = 0
	timeline.mu.Unlock()
}
