//go:build obs

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestStripedSinksMergeLikeSerial drives the *real* sinks with one op
// stream, split across goroutines and stripes, and asserts TakeSnapshot
// merges to exactly the serial totals — the sink-level version of the
// histogram merge property (stripe assignment must be invisible after
// merging).
func TestStripedSinksMergeLikeSerial(t *testing.T) {
	type op struct {
		stripe int
		steps  uint64
	}
	stream := make([]op, 5000)
	for i := range stream {
		stream[i] = op{stripe: i * 2654435761 % 977, steps: uint64(i % 37)}
	}
	var wantSteps uint64
	var wantHist Histogram
	for _, o := range stream {
		wantSteps += o.steps
		wantHist.Add(int(o.steps))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		Reset()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(stream); i += workers {
					RecordInsert(stream[i].stripe, stream[i].steps, 1, 0, 0)
					RecordFind(stream[i].stripe, stream[i].steps, i%2 == 0)
				}
			}(w)
		}
		wg.Wait()
		s := TakeSnapshot()
		if got := s.Get(CtrInsertOps); got != uint64(len(stream)) {
			t.Fatalf("workers=%d: insert ops %d, want %d", workers, got, len(stream))
		}
		if got := s.Get(CtrInsertProbeSteps); got != wantSteps {
			t.Fatalf("workers=%d: probe steps %d, want %d", workers, got, wantSteps)
		}
		if got := s.Get(CtrFindHits); got != uint64(len(stream)/2) {
			t.Fatalf("workers=%d: find hits %d, want %d", workers, got, len(stream)/2)
		}
		if s.InsertProbes != wantHist {
			t.Fatalf("workers=%d: insert histogram %v, want %v", workers, s.InsertProbes, wantHist)
		}
		if s.FindProbes != wantHist {
			t.Fatalf("workers=%d: find histogram %v, want %v", workers, s.FindProbes, wantHist)
		}
	}
}

func TestShardBulkGauge(t *testing.T) {
	Reset()
	// 4 shards, runs of 10/30/0/20: imbalance = 30*4/60 = 2.0x.
	RecordShardBulk([]int{0, 10, 40, 40, 60})
	s := TakeSnapshot()
	if got := s.Get(CtrShardBulkCalls); got != 1 {
		t.Fatalf("calls = %d", got)
	}
	if got := s.Get(CtrShardBulkRuns); got != 3 {
		t.Fatalf("nonempty runs = %d, want 3", got)
	}
	if got := s.Get(CtrShardBulkElems); got != 60 {
		t.Fatalf("elems = %d, want 60", got)
	}
	if s.MaxShardImbalancePm != 2000 {
		t.Fatalf("imbalance = %d pm, want 2000", s.MaxShardImbalancePm)
	}
	// A more balanced later call must not lower the max gauge.
	RecordShardBulk([]int{0, 15, 30, 45, 60})
	if s = TakeSnapshot(); s.MaxShardImbalancePm != 2000 {
		t.Fatalf("gauge dropped to %d pm", s.MaxShardImbalancePm)
	}
}

func TestPhaseSpansAndReset(t *testing.T) {
	Reset()
	sp := PhaseStart("insert")
	for i := 0; i < 5; i++ {
		sp.AddOp()
	}
	PhaseEnd(sp)
	sp = PhaseStart("read")
	sp.AddOp()
	PhaseEnd(sp)
	s := TakeSnapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(s.Spans), s.Spans)
	}
	if s.Spans[0].Phase != "insert" || s.Spans[0].Ops != 5 {
		t.Fatalf("span 0 = %+v", s.Spans[0])
	}
	if s.Spans[1].Phase != "read" || s.Spans[1].Ops != 1 {
		t.Fatalf("span 1 = %+v", s.Spans[1])
	}
	for _, span := range s.Spans {
		if span.EndNs < span.StartNs {
			t.Fatalf("span ends before it starts: %+v", span)
		}
	}
	if s.Spans[1].StartNs < s.Spans[0].StartNs {
		t.Fatal("timeline out of order")
	}
	// nil-span safety and reset.
	var nilSpan *ActiveSpan
	nilSpan.AddOp()
	PhaseEnd(nil)
	Reset()
	if s = TakeSnapshot(); len(s.Spans) != 0 || s.Get(CtrInsertOps) != 0 {
		t.Fatalf("Reset left state behind: %+v", s)
	}
}

func TestTimelineCap(t *testing.T) {
	Reset()
	defer Reset()
	for i := 0; i < TimelineCap+10; i++ {
		PhaseEnd(PhaseStart("read"))
	}
	s := TakeSnapshot()
	if len(s.Spans) != TimelineCap {
		t.Fatalf("got %d spans, want cap %d", len(s.Spans), TimelineCap)
	}
	if s.SpansDropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.SpansDropped)
	}
}

func TestServeEndpoint(t *testing.T) {
	Reset()
	RecordInsert(0, 3, 1, 0, 0)
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback here: %v", err)
	}
	for _, path := range []string{"/debug/phasestats", "/debug/vars"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d err %v", path, resp.StatusCode, err)
		}
		if path == "/debug/phasestats" {
			var decoded struct {
				Enabled  bool              `json:"enabled"`
				Counters map[string]uint64 `json:"counters"`
			}
			if err := json.Unmarshal(body, &decoded); err != nil {
				t.Fatalf("bad JSON from %s: %v\n%s", path, err, body)
			}
			if !decoded.Enabled || decoded.Counters["insert-ops"] != 1 {
				t.Fatalf("unexpected snapshot: %s", body)
			}
		}
	}
}
