//go:build !nostats

package obs

import (
	"sync/atomic"

	"phasehash/internal/atomicx"
)

// CoreEnabled reports whether this binary carries the always-on counter
// core. It is true in default builds and false under -tags nostats; like
// Enabled it is a constant, so `if obs.CoreEnabled { ... }` call sites
// vanish from the nostats A/B build the overhead gate measures against.
const CoreEnabled = true

const (
	// coreStripes is the number of padded core sinks. Stripe selection
	// follows the obs sinks: table hooks pass the operation's home-cell
	// index (an identity already in a register), pool hooks a fixed
	// stripe. Must be a power of two.
	coreStripes    = 64
	coreStripeMask = coreStripes - 1

	coreNumCounters = 13 // additive CoreStats fields (gauge excluded)
)

// Indices into coreSink.c. Kept as plain consts (not a type): they never
// leave this file. The gauge (MaxShardImbalancePm) lives outside the
// stripes as a WriteMax word.
const (
	cInsertOps = iota
	cInsertSteps
	cFindOps
	cFindSteps
	cFindHits
	cDeleteOps
	cDeleteSteps
	cShardBulkCalls
	cShardBulkRuns
	cShardBulkElems
	cParDispatches
	cParBlocks
	cParItems
)

// coreSink is one stripe of always-on counters, padded to a cache-line
// multiple so adjacent stripes never share a line (64-byte lines; 13
// words round to 2 lines with 3 words of pad).
type coreSink struct {
	c [coreNumCounters]atomic.Uint64
	_ [(64 - (coreNumCounters*8)%64) % 64]byte
}

var (
	coreSinks [coreStripes]coreSink

	// coreImbalancePm is the always-on shard-imbalance WriteMax gauge
	// (per-mille, 1000 = balanced).
	coreImbalancePm uint64
)

// CoreInsert publishes a batch of completed insert operations: ops
// completed and probe steps walked. Bulk kernels batch a whole block
// into one call; the per-element API passes ops=1. stripe is any value
// already at hand that varies across concurrent callers (the home-cell
// index).
func CoreInsert(stripe int, ops, steps uint64) {
	s := &coreSinks[stripe&coreStripeMask]
	s.c[cInsertOps].Add(ops)
	s.c[cInsertSteps].Add(steps)
}

// CoreFind publishes a batch of completed find operations.
func CoreFind(stripe int, ops, steps, hits uint64) {
	s := &coreSinks[stripe&coreStripeMask]
	s.c[cFindOps].Add(ops)
	s.c[cFindSteps].Add(steps)
	if hits != 0 {
		s.c[cFindHits].Add(hits)
	}
}

// CoreDelete publishes a batch of completed delete operations.
func CoreDelete(stripe int, ops, steps uint64) {
	s := &coreSinks[stripe&coreStripeMask]
	s.c[cDeleteOps].Add(ops)
	s.c[cDeleteSteps].Add(steps)
}

// CoreShardBulk publishes one sharded bulk-kernel partition from its
// offsets (len = shards+1): call/run/element totals plus the imbalance
// gauge max-run * shards * 1000 / total. The gauge input is a pure
// function of the partitioned keys and the shard count, so the running
// max is schedule-independent for a fixed multiset of bulk calls.
func CoreShardBulk(offsets []int) {
	shards := len(offsets) - 1
	if shards <= 0 {
		return
	}
	total := offsets[shards] - offsets[0]
	runs, maxRun := 0, 0
	for i := 0; i < shards; i++ {
		n := offsets[i+1] - offsets[i]
		if n > 0 {
			runs++
		}
		if n > maxRun {
			maxRun = n
		}
	}
	s := &coreSinks[1]
	s.c[cShardBulkCalls].Add(1)
	s.c[cShardBulkRuns].Add(uint64(runs))
	s.c[cShardBulkElems].Add(uint64(total))
	if total > 0 {
		atomicx.WriteMax(&coreImbalancePm, uint64(maxRun)*uint64(shards)*1000/uint64(total))
	}
}

// CoreDispatch counts one pooled loop dispatch, its block count and the
// loop length it covers.
func CoreDispatch(nblocks, items int) {
	s := &coreSinks[0]
	s.c[cParDispatches].Add(1)
	s.c[cParBlocks].Add(uint64(nblocks))
	s.c[cParItems].Add(uint64(items))
}

// CoreMaxShardImbalancePm returns the current imbalance gauge without
// merging the stripes (the construction-time shard policy's one read).
func CoreMaxShardImbalancePm() uint64 { return atomicx.Load(&coreImbalancePm) }

// CoreSnapshot merges every stripe into one CoreStats. Merging is pure
// addition (plus one gauge load), so the result does not depend on which
// stripe recorded what. Take snapshots at quiescence; a racing snapshot
// is safe but may be torn across counters.
func CoreSnapshot() CoreStats {
	var s CoreStats
	for i := range coreSinks {
		c := &coreSinks[i].c
		s.InsertOps += c[cInsertOps].Load()
		s.InsertProbeSteps += c[cInsertSteps].Load()
		s.FindOps += c[cFindOps].Load()
		s.FindProbeSteps += c[cFindSteps].Load()
		s.FindHits += c[cFindHits].Load()
		s.DeleteOps += c[cDeleteOps].Load()
		s.DeleteProbeSteps += c[cDeleteSteps].Load()
		s.ShardBulkCalls += c[cShardBulkCalls].Load()
		s.ShardBulkRuns += c[cShardBulkRuns].Load()
		s.ShardBulkElems += c[cShardBulkElems].Load()
		s.ParDispatches += c[cParDispatches].Load()
		s.ParBlocks += c[cParBlocks].Load()
		s.ParItems += c[cParItems].Load()
	}
	s.MaxShardImbalancePm = atomicx.Load(&coreImbalancePm)
	return s
}

// CoreReset zeroes every core sink and the imbalance gauge. Benchmark
// drivers reset between cells so one distribution's skew cannot leak
// into the next cell's tuning inputs.
func CoreReset() {
	for i := range coreSinks {
		for j := range coreSinks[i].c {
			coreSinks[i].c[j].Store(0)
		}
	}
	atomicx.Store(&coreImbalancePm, 0)
}
