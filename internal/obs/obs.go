// Package obs is the runtime telemetry substrate (phasestats): counters,
// probe-length histograms, phase timelines and a live debug endpoint for
// the phase-concurrent tables and the parallel runtime.
//
// The paper's performance claims (Section 6) are explained by microscopic
// quantities — probe-sequence lengths under priority-ordered probing, CAS
// retry rates under contention, displacement-chain lengths on insert,
// per-phase wall time — that timings alone cannot show ("Concurrent Hash
// Tables: Fast and General?(!)", Maier et al., makes the same point for
// open addressing generally). This package makes those quantities
// observable in our own runs without costing the benchmarked paths
// anything when it is off.
//
// Like internal/chaos, the package has two build-tag implementations:
//
//   - default (no tag): every hook is a no-op behind the constant
//     Enabled == false. Call sites are written
//     `if obs.Enabled { obs.RecordInsert(...) }`, so the compiler deletes
//     them entirely; `make obs-sizecheck` asserts with `go tool nm` that
//     no Record* symbol survives linking an untagged binary, and the CI
//     overhead gate diffs the untagged 2^20 uniform insert benchmark
//     against the committed BENCH_core.json baseline.
//   - `-tags obs`: the hooks are live. Hot paths accumulate locally (in
//     registers) and publish once per operation into cache-line-padded
//     striped sinks; Snapshot() merges the sinks into one deterministic
//     struct.
//
// Sink design: counter increments must not contend, but Go offers no
// cheap goroutine-local storage (parallel.WorkerID costs ~1µs, far more
// than a table operation). Where a worker identity is free — the pool
// loops in internal/parallel, which know their worker index — sinks are
// indexed per worker. On the per-element table paths the operation's own
// probe origin picks the stripe instead: different elements hash to
// different stripes, so increments spread across padded cache lines
// without any identity lookup, and merging is oblivious to which stripe
// got what. Schedule-independent quantities (operation counts) therefore
// merge to schedule-independent totals, which the detres grid asserts.
//
// What is deterministic: operation counts (inserts, finds, deletes,
// find hits) for a given workload. What is not: probe steps, CAS
// failures, displacement and replacement-chain work, migration
// attribution — those measure the *schedule*, which is exactly why they
// are worth recording. Timings and spans are wall-clock and never
// deterministic.
//
// Since the self-tuning layer (internal/tune) landed, a minimal subset
// — the always-on counter core — lives OUTSIDE the obs tag: striped
// op/probe-step counters, the shard-imbalance gauge and the pool
// dispatch counters (corestats.go, core_on.go). Production binaries
// carry it by default so tuning decisions have inputs; -tags nostats
// compiles it out for the A/B overhead gate, exactly as untagged builds
// compile out the Record* hooks. The Core* hooks batch per block on the
// bulk paths, so the measured overhead of the core stays within the 1%
// gate. obs builds record both layers into separate stores; Snapshot
// and CoreSnapshot never mix.
package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"

	"phasehash/internal/chaos"
)

// ErrDisabled is returned by Serve when the binary was built without
// the obs tag.
var ErrDisabled = errors.New("obs: built without -tags obs")

// Counter identifies one merged telemetry counter. The set covers the
// probe loops (word + pointer tables, atomic and serial variants), the
// growing table's migration machinery, the parallel pool and the
// sharded bulk kernels.
type Counter uint8

// Counters.
const (
	// Insert path (WordTable/PtrTable insertLoopFrom + InsertLimited +
	// the sharded owner-computes insertSerial).
	CtrInsertOps           Counter = iota // insert operations completed
	CtrInsertProbeSteps                   // cells stepped past across all inserts
	CtrInsertCASAttempts                  // claim/merge/displace CASes issued
	CtrInsertCASFailures                  // CASes that lost (incl. chaos-forced)
	CtrInsertDisplacements                // lower-priority elements displaced and carried

	// Find path (findFrom / findSerial).
	CtrFindOps        // find operations completed
	CtrFindProbeSteps // cells stepped past across all finds
	CtrFindHits       // finds that located their key

	// Delete path (deleteFrom / deleteSerial).
	CtrDeleteOps          // delete operations completed
	CtrDeleteProbeSteps   // cells stepped in the victim scan
	CtrDeleteReplacements // replacement CASes won: recursive hole-fill depth
	CtrDeleteCASFailures  // replacement CASes lost to concurrent deletes

	// GrowTable migration.
	CtrGrowEvents     // table doublings published
	CtrGrowCellsMoved // elements moved old -> new (migrate quota + drain)

	// Parallel pool (internal/parallel).
	CtrParDispatches // pooled ForBlocked dispatches
	CtrParBlocks     // blocks dispatched (sum of nblocks per dispatch)
	CtrParWakes      // pool-worker wake tokens consumed
	CtrParStaleWakes // wakes that found the job already drained
	CtrParCursorMiss // cursor draws past the last block (claim overshoot)

	// Sharded owner-computes bulk kernels.
	CtrShardBulkCalls // bulk kernel invocations
	CtrShardBulkRuns  // shard runs handed to owners
	CtrShardBulkElems // elements across all runs

	// Epoch scheduler (internal/epoch).
	CtrEpochAdmitted     // ops admitted past the admission gate
	CtrEpochShedOverload // ops refused at admission (queue at limit, fail-fast)
	CtrEpochShedDeadline // ops shed at flush time (deadline expired before the epoch)
	CtrEpochCancelled    // result deliveries cancelled (client ctx / chaos injection)
	CtrEpochFlushes      // epochs flushed through the table
	CtrEpochFlushOps     // ops executed across all flushed epochs
	CtrEpochSplits       // oversized pending batches split into extra epochs
	CtrEpochInsertFull   // insert futures resolved with ErrFull

	// Compact fingerprint-probed finds (CompactTable findFrom /
	// findSerial; op counts flow into the shared find counters above).
	CtrFindCtrlWords // ctrl words loaded across all compact finds
	CtrFindFPFalse   // fingerprint matches whose cell held a different key

	NumCounters = int(iota)
)

// counterNames are the stable JSON/expvar keys. Names that describe the
// same code sites as chaos injection points reuse the chaos site-name
// constants (internal/chaos/sitenames.go) so the two vocabularies
// cannot drift.
var counterNames = [NumCounters]string{
	CtrInsertOps:           "insert-ops",
	CtrInsertProbeSteps:    "insert-probe-steps",
	CtrInsertCASAttempts:   "insert-cas-attempts",
	CtrInsertCASFailures:   "insert-cas-failures",
	CtrInsertDisplacements: "insert-displacements",
	CtrFindOps:             "find-ops",
	CtrFindProbeSteps:      "find-probe-steps",
	CtrFindHits:            "find-hits",
	CtrDeleteOps:           "delete-ops",
	CtrDeleteProbeSteps:    "delete-probe-steps",
	CtrDeleteReplacements:  "delete-replacements",
	CtrDeleteCASFailures:   "delete-cas-failures",
	CtrGrowEvents:          "grow-events",
	CtrGrowCellsMoved:      chaos.SiteNameGrowMigrate + "-cells",
	CtrParDispatches:       "parallel-dispatches",
	CtrParBlocks:           "parallel-blocks",
	CtrParWakes:            chaos.SiteNameParallelWorker + "-wakes",
	CtrParStaleWakes:       chaos.SiteNameParallelWorker + "-stale-wakes",
	CtrParCursorMiss:       "parallel-cursor-miss",
	CtrShardBulkCalls:      "shard-bulk-calls",
	CtrShardBulkRuns:       "shard-bulk-runs",
	CtrShardBulkElems:      "shard-bulk-elems",
	CtrEpochAdmitted:       chaos.SiteNameEpochAdmit + "-ops",
	CtrEpochShedOverload:   chaos.SiteNameEpochAdmit + "-shed-overload",
	CtrEpochShedDeadline:   chaos.SiteNameEpochFlush + "-shed-deadline",
	CtrEpochCancelled:      chaos.SiteNameEpochCancel + "-ops",
	CtrEpochFlushes:        chaos.SiteNameEpochFlush + "-epochs",
	CtrEpochFlushOps:       chaos.SiteNameEpochFlush + "-ops",
	CtrEpochSplits:         chaos.SiteNameEpochFlush + "-splits",
	CtrEpochInsertFull:     chaos.SiteNameEpochFlush + "-insert-full",
	CtrFindCtrlWords:       "find-ctrl-words",
	CtrFindFPFalse:         "find-fp-false-positives",
}

// String returns the counter's stable name.
func (c Counter) String() string {
	if int(c) < NumCounters {
		return counterNames[c]
	}
	return "unknown-counter"
}

// NumProbeBuckets is the histogram width: power-of-two buckets covering
// probe distances 0, 1, [2,4), [4,8), ... with the last bucket open.
const NumProbeBuckets = 16

// Histogram is a mergeable power-of-two-bucket histogram of probe
// lengths. Bucket 0 counts distance-0 probes (element on its home
// cell), bucket b >= 1 counts distances in [2^(b-1), 2^b), and the last
// bucket is open-ended. Merging histograms is element-wise addition, so
// per-sink (or per-worker) histograms over a partitioned op stream merge
// to exactly the serial histogram of the whole stream — the property the
// obs tests assert.
type Histogram [NumProbeBuckets]uint64

// BucketOf returns the bucket index for probe distance d.
func BucketOf(d int) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d)) // d in [2^(b-1), 2^b)
	if b >= NumProbeBuckets {
		return NumProbeBuckets - 1
	}
	return b
}

// BucketLo returns the smallest distance counted by bucket b.
func BucketLo(b int) int {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Add counts one probe of distance d.
func (h *Histogram) Add(d int) { h[BucketOf(d)]++ }

// Merge adds o into h element-wise.
func (h *Histogram) Merge(o Histogram) {
	for i := range h {
		h[i] += o[i]
	}
}

// Total returns the number of recorded probes.
func (h Histogram) Total() uint64 {
	var t uint64
	for _, v := range h {
		t += v
	}
	return t
}

// Quantile returns an upper bound on the q-quantile probe distance
// (e.g. 0.99 for p99): the upper edge of the first bucket whose
// cumulative count reaches q of the total. Returns 0 for an empty
// histogram.
func (h Histogram) Quantile(q float64) int {
	total := h.Total()
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	if need > total {
		need = total
	}
	var cum uint64
	for b, v := range h {
		cum += v
		if cum >= need {
			if b == 0 {
				return 0
			}
			return 1<<b - 1 // upper edge of [2^(b-1), 2^b)
		}
	}
	return 1<<NumProbeBuckets - 1
}

// PhaseSpan is one entry of the phase timeline: a maximal interval
// during which one phase was continuously active on a PhaseGuard (or
// explicitly bracketed by a driver), with the number of guarded
// operations that ran inside it. StartNs/EndNs are nanoseconds since
// process start (process-local monotonic time, comparable within one
// timeline only).
type PhaseSpan struct {
	Phase   string `json:"phase"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Ops     uint64 `json:"ops"`
}

// Snapshot is the deterministic merged view of every sink. Field order
// and JSON encoding are stable; see the package comment for which
// fields are schedule-independent.
type Snapshot struct {
	// Enabled records whether the binary carries live instrumentation
	// (built with -tags obs); every other field is zero when false.
	Enabled bool

	// Counters holds the merged counter values, indexed by Counter.
	Counters [NumCounters]uint64

	// Probe-length histograms per operation class.
	InsertProbes Histogram
	FindProbes   Histogram
	DeleteProbes Histogram

	// MaxShardImbalancePm is the worst per-mille shard imbalance seen by
	// any sharded bulk kernel call: max-run-length * shards * 1000 /
	// total elements (1000 = perfectly balanced).
	MaxShardImbalancePm uint64

	// EpochLatency is the admit-to-complete latency histogram of epoch
	// scheduler ops, in microseconds (power-of-two buckets, like the
	// probe histograms). Wall-clock: never schedule-independent.
	EpochLatency Histogram

	// MaxEpochQueueDepth is the deepest admission queue observed by the
	// epoch scheduler; it must never exceed the configured queue limit
	// (the overload tests assert this against Server.Stats too).
	MaxEpochQueueDepth uint64

	// WorkerBlocks[i] is the number of loop blocks executed by pool
	// worker i (index 0 is the dispatching goroutine). Trailing zero
	// workers are trimmed.
	WorkerBlocks []uint64

	// Spans is the recorded phase timeline, oldest first; bounded (see
	// TimelineCap) with SpansDropped counting overflow.
	Spans        []PhaseSpan
	SpansDropped uint64
}

// Get returns the merged value of counter c.
func (s *Snapshot) Get(c Counter) uint64 { return s.Counters[c] }

// OpCounts is the schedule-independent subset of a Snapshot: for a
// fixed workload these totals are identical across seeds, worker counts
// and fault profiles (the detres obs oracle asserts this). Probe steps,
// CAS failures and chain depths are deliberately excluded — they
// measure the schedule.
type OpCounts struct {
	InsertOps uint64
	FindOps   uint64
	FindHits  uint64
	DeleteOps uint64
}

// Ops returns the schedule-independent operation counts.
func (s *Snapshot) Ops() OpCounts {
	return OpCounts{
		InsertOps: s.Counters[CtrInsertOps],
		FindOps:   s.Counters[CtrFindOps],
		FindHits:  s.Counters[CtrFindHits],
		DeleteOps: s.Counters[CtrDeleteOps],
	}
}

// MeanProbe returns the mean probe distance for the given op histogram
// class ("insert", "find", "delete"), computed from the exact step sums
// (not the histogram buckets).
func (s *Snapshot) MeanProbe(class string) float64 {
	var steps, ops uint64
	switch class {
	case "insert":
		steps, ops = s.Counters[CtrInsertProbeSteps], s.Counters[CtrInsertOps]
	case "find":
		steps, ops = s.Counters[CtrFindProbeSteps], s.Counters[CtrFindOps]
	case "delete":
		steps, ops = s.Counters[CtrDeleteProbeSteps], s.Counters[CtrDeleteOps]
	}
	if ops == 0 {
		return 0
	}
	return float64(steps) / float64(ops)
}

// CASRetryRate returns insert CAS failures per insert operation — the
// contention gauge Maier et al. use to explain throughput cliffs.
func (s *Snapshot) CASRetryRate() float64 {
	ops := s.Counters[CtrInsertOps]
	if ops == 0 {
		return 0
	}
	return float64(s.Counters[CtrInsertCASFailures]) / float64(ops)
}

// DisplacementRate returns insert displacements per insert operation.
func (s *Snapshot) DisplacementRate() float64 {
	ops := s.Counters[CtrInsertOps]
	if ops == 0 {
		return 0
	}
	return float64(s.Counters[CtrInsertDisplacements]) / float64(ops)
}

// ReplacementDepth returns the mean recursive hole-fill depth per
// delete operation.
func (s *Snapshot) ReplacementDepth() float64 {
	ops := s.Counters[CtrDeleteOps]
	if ops == 0 {
		return 0
	}
	return float64(s.Counters[CtrDeleteReplacements]) / float64(ops)
}

// CtrlWordsPerFind returns the mean ctrl words loaded per find
// operation on the compact table's SWAR probe path. Meaningful only
// when the measured section ran compact finds exclusively (find ops
// from other table kinds share the denominator).
func (s *Snapshot) CtrlWordsPerFind() float64 {
	ops := s.Counters[CtrFindOps]
	if ops == 0 {
		return 0
	}
	return float64(s.Counters[CtrFindCtrlWords]) / float64(ops)
}

// FPFalsePositiveRate returns fingerprint false positives per find
// operation: candidates whose 7-bit fingerprint matched but whose cell
// held a different key, costing one wasted cell load each.
func (s *Snapshot) FPFalsePositiveRate() float64 {
	ops := s.Counters[CtrFindOps]
	if ops == 0 {
		return 0
	}
	return float64(s.Counters[CtrFindFPFalse]) / float64(ops)
}

// MarshalJSON encodes the snapshot with named counters (stable keys,
// stable order via encoding/json's sorted map keys).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	counters := make(map[string]uint64, NumCounters)
	for c := 0; c < NumCounters; c++ {
		counters[counterNames[c]] = s.Counters[c]
	}
	return json.Marshal(struct {
		Enabled             bool              `json:"enabled"`
		Counters            map[string]uint64 `json:"counters"`
		InsertProbes        Histogram         `json:"insert_probe_hist"`
		FindProbes          Histogram         `json:"find_probe_hist"`
		DeleteProbes        Histogram         `json:"delete_probe_hist"`
		MeanInsertProbe     float64           `json:"mean_insert_probe"`
		P99InsertProbe      int               `json:"p99_insert_probe"`
		CASRetryRate        float64           `json:"cas_retry_rate"`
		MaxShardImbalancePm uint64            `json:"max_shard_imbalance_pm"`
		EpochLatency        Histogram         `json:"epoch_latency_us_hist"`
		P99EpochLatencyUs   int               `json:"p99_epoch_latency_us"`
		MaxEpochQueueDepth  uint64            `json:"max_epoch_queue_depth"`
		WorkerBlocks        []uint64          `json:"worker_blocks,omitempty"`
		Spans               []PhaseSpan       `json:"spans,omitempty"`
		SpansDropped        uint64            `json:"spans_dropped,omitempty"`
	}{
		Enabled:             s.Enabled,
		Counters:            counters,
		InsertProbes:        s.InsertProbes,
		FindProbes:          s.FindProbes,
		DeleteProbes:        s.DeleteProbes,
		MeanInsertProbe:     s.MeanProbe("insert"),
		P99InsertProbe:      s.InsertProbes.Quantile(0.99),
		CASRetryRate:        s.CASRetryRate(),
		MaxShardImbalancePm: s.MaxShardImbalancePm,
		EpochLatency:        s.EpochLatency,
		P99EpochLatencyUs:   s.EpochLatency.Quantile(0.99),
		MaxEpochQueueDepth:  s.MaxEpochQueueDepth,
		WorkerBlocks:        s.WorkerBlocks,
		Spans:               s.Spans,
		SpansDropped:        s.SpansDropped,
	})
}

// String renders a compact human-readable summary (the phload soak and
// phbench -stats output).
func (s *Snapshot) String() string {
	if !s.Enabled {
		return "obs: off (build with -tags obs)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "obs: insert ops=%d probes mean=%.2f p99=%d cas-retry=%.4f/op displaced=%.3f/op",
		s.Counters[CtrInsertOps], s.MeanProbe("insert"), s.InsertProbes.Quantile(0.99),
		s.CASRetryRate(), s.DisplacementRate())
	fmt.Fprintf(&b, "; find ops=%d probes mean=%.2f p99=%d hits=%d",
		s.Counters[CtrFindOps], s.MeanProbe("find"), s.FindProbes.Quantile(0.99), s.Counters[CtrFindHits])
	fmt.Fprintf(&b, "; delete ops=%d repl-depth=%.3f/op",
		s.Counters[CtrDeleteOps], s.ReplacementDepth())
	if w := s.Counters[CtrFindCtrlWords]; w > 0 {
		fmt.Fprintf(&b, "; compact ctrl-words=%.2f/find fp-false=%.4f/find",
			s.CtrlWordsPerFind(), s.FPFalsePositiveRate())
	}
	if g := s.Counters[CtrGrowEvents]; g > 0 {
		fmt.Fprintf(&b, "; grow events=%d moved=%d", g, s.Counters[CtrGrowCellsMoved])
	}
	if r := s.Counters[CtrShardBulkRuns]; r > 0 {
		fmt.Fprintf(&b, "; shard runs=%d elems=%d imbalance=%.2fx",
			r, s.Counters[CtrShardBulkElems], float64(s.MaxShardImbalancePm)/1000)
	}
	if e := s.Counters[CtrEpochFlushes]; e > 0 {
		fmt.Fprintf(&b, "; epochs=%d ops=%d splits=%d shed(ovl=%d ddl=%d) cancelled=%d full=%d p99lat=%dus maxq=%d",
			e, s.Counters[CtrEpochFlushOps], s.Counters[CtrEpochSplits],
			s.Counters[CtrEpochShedOverload], s.Counters[CtrEpochShedDeadline],
			s.Counters[CtrEpochCancelled], s.Counters[CtrEpochInsertFull],
			s.EpochLatency.Quantile(0.99), s.MaxEpochQueueDepth)
	}
	return b.String()
}
