//go:build obs

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var serveOnce sync.Once

// Serve starts the live debug endpoint on addr (e.g. "localhost:6060")
// and returns the bound address. It registers, on a private mux:
//
//   - /debug/vars        — expvar, including a "phasestats" var whose
//     value is the current Snapshot JSON (recomputed per request)
//   - /debug/phasestats  — the Snapshot JSON alone, indented
//   - /debug/pprof/...   — the standard net/http/pprof handlers
//
// so a long soak (`phload -chaos -obs addr`) can be inspected live.
// The listener runs until the process exits; Serve returns immediately.
func Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	serveOnce.Do(func() {
		expvar.Publish("phasestats", expvar.Func(func() any {
			return TakeSnapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/phasestats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(TakeSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		srv := &http.Server{Handler: mux}
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("obs: debug server stopped: %v\n", err)
		}
	}()
	return ln.Addr(), nil
}
