//go:build nostats

package obs

// CoreEnabled reports whether this binary carries the always-on counter
// core. Under -tags nostats it is constant false, so every
// `if obs.CoreEnabled { obs.Core...() }` call site is dead-code
// eliminated — this build exists only as the A/B baseline for the
// core-overhead gate (`make tune-overhead`) and its `go tool nm` size
// check, which asserts no Core* symbol survives linking it.
const CoreEnabled = false

// CoreInsert is a no-op under -tags nostats.
func CoreInsert(stripe int, ops, steps uint64) {}

// CoreFind is a no-op under -tags nostats.
func CoreFind(stripe int, ops, steps, hits uint64) {}

// CoreDelete is a no-op under -tags nostats.
func CoreDelete(stripe int, ops, steps uint64) {}

// CoreShardBulk is a no-op under -tags nostats.
func CoreShardBulk(offsets []int) {}

// CoreDispatch is a no-op under -tags nostats.
func CoreDispatch(nblocks, items int) {}

// CoreMaxShardImbalancePm returns 0 under -tags nostats; the tuning
// policies fall back to their static defaults on a zero gauge.
func CoreMaxShardImbalancePm() uint64 { return 0 }

// CoreSnapshot returns an empty CoreStats under -tags nostats.
func CoreSnapshot() CoreStats { return CoreStats{} }

// CoreReset is a no-op under -tags nostats.
func CoreReset() {}
