//go:build !obs

package obs

// Enabled reports whether this binary was built with the obs tag. It is
// a constant so that call sites guarded by `if obs.Enabled` are removed
// by dead-code elimination: the production build pays nothing for the
// hooks, and `make obs-sizecheck` asserts no Record* symbol survives
// linking.
const Enabled = false

// RecordInsert is a no-op without the obs tag.
func RecordInsert(stripe int, steps, casAttempts, casFailures, displacements uint64) {}

// RecordFind is a no-op without the obs tag.
func RecordFind(stripe int, steps uint64, hit bool) {}

// RecordCompactFind is a no-op without the obs tag.
func RecordCompactFind(stripe int, steps, ctrlWords, falsePos uint64, hit bool) {}

// RecordDelete is a no-op without the obs tag.
func RecordDelete(stripe int, steps, replacements, casFailures uint64) {}

// RecordGrowEvent is a no-op without the obs tag.
func RecordGrowEvent() {}

// RecordMigrate is a no-op without the obs tag.
func RecordMigrate(stripe int, moved uint64) {}

// RecordDispatch is a no-op without the obs tag.
func RecordDispatch(nblocks int) {}

// RecordWorkerBlocks is a no-op without the obs tag.
func RecordWorkerBlocks(worker int, blocks uint64) {}

// RecordWake is a no-op without the obs tag.
func RecordWake(stale bool) {}

// RecordCursorMiss is a no-op without the obs tag.
func RecordCursorMiss(n uint64) {}

// RecordShardBulk is a no-op without the obs tag.
func RecordShardBulk(offsets []int) {}

// RecordEpochAdmit is a no-op without the obs tag.
func RecordEpochAdmit(depth int) {}

// RecordEpochShed is a no-op without the obs tag.
func RecordEpochShed(overload bool) {}

// RecordEpochCancel is a no-op without the obs tag.
func RecordEpochCancel() {}

// RecordEpochFlush is a no-op without the obs tag.
func RecordEpochFlush(ops int, split bool, insertFull int) {}

// RecordEpochLatency is a no-op without the obs tag.
func RecordEpochLatency(us uint64) {}

// ActiveSpan is an in-progress phase-timeline span. Without the obs tag
// it carries no state and all methods are no-ops; a nil *ActiveSpan is
// always safe to use.
type ActiveSpan struct{}

// AddOp is a no-op without the obs tag.
func (*ActiveSpan) AddOp() {}

// PhaseStart returns nil without the obs tag.
func PhaseStart(name string) *ActiveSpan { return nil }

// PhaseEnd is a no-op without the obs tag.
func PhaseEnd(*ActiveSpan) {}

// TakeSnapshot returns an empty snapshot with Enabled == false.
func TakeSnapshot() Snapshot { return Snapshot{} }

// Reset is a no-op without the obs tag.
func Reset() {}
