package atomicx

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestWriteMinSequential(t *testing.T) {
	x := uint64(100)
	if !WriteMin(&x, 50) || x != 50 {
		t.Fatal("WriteMin failed to lower")
	}
	if WriteMin(&x, 75) || x != 50 {
		t.Fatal("WriteMin raised the value")
	}
	if WriteMin(&x, 50) {
		t.Fatal("WriteMin of equal value reported a write")
	}
}

func TestWriteMaxSequential(t *testing.T) {
	x := uint64(100)
	if !WriteMax(&x, 150) || x != 150 {
		t.Fatal("WriteMax failed to raise")
	}
	if WriteMax(&x, 120) || x != 150 {
		t.Fatal("WriteMax lowered the value")
	}
}

func TestWriteMinConcurrentCommutes(t *testing.T) {
	// The defining property: the result is the minimum of all written
	// values, regardless of scheduling — and exactly one writer wins.
	for trial := 0; trial < 20; trial++ {
		x := ^uint64(0)
		var wg sync.WaitGroup
		wins := make(chan uint64, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for v := uint64(g); v < 64; v += 8 {
					if WriteMin(&x, v*7+3) {
						wins <- v*7 + 3
					}
				}
			}(g)
		}
		wg.Wait()
		close(wins)
		if x != 3 {
			t.Fatalf("final value %d, want 3", x)
		}
		// The winning sequence must be strictly decreasing per writer...
		// globally the last winner must be the minimum.
		sawMin := false
		for v := range wins {
			if v == 3 {
				sawMin = true
			}
		}
		if !sawMin {
			t.Fatal("minimum value never reported a win")
		}
	}
}

func TestWriteMinInt64(t *testing.T) {
	x := int64(10)
	if !WriteMinInt64(&x, -5) || x != -5 {
		t.Fatal("WriteMinInt64 failed with negatives")
	}
	if WriteMinInt64(&x, 0) {
		t.Fatal("WriteMinInt64 raised")
	}
}

func TestQuickWriteMinIsMin(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		x := ^uint64(0)
		min := x
		for _, v := range vals {
			WriteMin(&x, v)
			if v < min {
				min = v
			}
		}
		return x == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCASLoadStoreAdd(t *testing.T) {
	x := uint64(1)
	if !CAS(&x, 1, 2) || Load(&x) != 2 {
		t.Fatal("CAS success path broken")
	}
	if CAS(&x, 1, 3) || Load(&x) != 2 {
		t.Fatal("CAS failure path broken")
	}
	Store(&x, 9)
	if Add(&x, 3) != 12 {
		t.Fatal("Add broken")
	}
}

func TestPaddedCounterSize(t *testing.T) {
	var c PaddedCounter
	if size := int(unsafe.Sizeof(c)); size < 64 {
		t.Fatalf("PaddedCounter is %d bytes; must fill a cache line", size)
	}
	c.Add(5)
	c.Add(2)
	if c.Load() != 7 {
		t.Fatal("counter arithmetic broken")
	}
	c.Store(1)
	if c.Load() != 1 {
		t.Fatal("Store broken")
	}
}

func TestCounterArray(t *testing.T) {
	a := NewCounterArray(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(g, 1)
			}
		}(g)
	}
	wg.Wait()
	if a.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", a.Total())
	}
}
