// Package atomicx provides the small set of atomic primitives the paper's
// algorithms are written in terms of: compare-and-swap on table cells,
// the WriteMin/WriteMax priority-update operation (Shun et al., "Reducing
// contention through priority updates", SPAA 2013), fetch-and-add, and
// false-sharing-padded counters.
package atomicx

import "sync/atomic"

// WriteMin atomically stores val at addr iff val < current value. It
// returns true iff it performed the store. Concurrent WriteMins commute:
// the final value is the minimum of all written values regardless of
// scheduling, which is what makes it a determinism-preserving primitive.
func WriteMin(addr *uint64, val uint64) bool {
	for {
		cur := atomic.LoadUint64(addr)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, cur, val) {
			return true
		}
	}
}

// WriteMinInt64 is WriteMin for int64 values.
func WriteMinInt64(addr *int64, val int64) bool {
	for {
		cur := atomic.LoadInt64(addr)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, cur, val) {
			return true
		}
	}
}

// WriteMax atomically stores val at addr iff val > current value,
// returning true iff it stored.
func WriteMax(addr *uint64, val uint64) bool {
	for {
		cur := atomic.LoadUint64(addr)
		if val <= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, cur, val) {
			return true
		}
	}
}

// CAS is a thin alias for atomic.CompareAndSwapUint64, matching the
// CAS(loc, oldV, newV) notation used in the paper's pseudocode.
func CAS(addr *uint64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(addr, old, new)
}

// Load is a thin alias for atomic.LoadUint64.
func Load(addr *uint64) uint64 { return atomic.LoadUint64(addr) }

// Store is a thin alias for atomic.StoreUint64.
func Store(addr *uint64, v uint64) { atomic.StoreUint64(addr, v) }

// Add is fetch-and-add on uint64, returning the new value (the xadd
// primitive the paper's non-deterministic edge-contraction path uses).
func Add(addr *uint64, delta uint64) uint64 {
	return atomic.AddUint64(addr, delta)
}

// cacheLine is the assumed cache-line size in bytes; 64 on every machine
// the paper or this reproduction targets.
const cacheLine = 64

// PaddedCounter is a uint64 counter padded to a full cache line so that
// arrays of counters (one per worker) do not false-share.
type PaddedCounter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Add adds delta and returns the new value.
func (c *PaddedCounter) Add(delta uint64) uint64 { return c.v.Add(delta) }

// Load returns the current value.
func (c *PaddedCounter) Load() uint64 { return c.v.Load() }

// Store sets the value.
func (c *PaddedCounter) Store(v uint64) { c.v.Store(v) }

// PaddedInt64 is an int64 counter padded to a full cache line. The
// parallel runtime uses it for work-distribution hot words (the shared
// block cursor and outstanding-block count of a loop dispatch): the two
// words every worker hammers must not share a line with each other or
// with anything else, or the ping-ponging line becomes the scheduler's
// bottleneck.
type PaddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Add adds delta and returns the new value.
func (c *PaddedInt64) Add(delta int64) int64 { return c.v.Add(delta) }

// Load returns the current value.
func (c *PaddedInt64) Load() int64 { return c.v.Load() }

// Store sets the value.
func (c *PaddedInt64) Store(v int64) { c.v.Store(v) }

// CounterArray is a set of per-worker padded counters with a combined
// total, used for low-contention statistics gathering in benchmarks.
type CounterArray struct {
	cs []PaddedCounter
}

// NewCounterArray returns a CounterArray with n independent counters.
func NewCounterArray(n int) *CounterArray {
	return &CounterArray{cs: make([]PaddedCounter, n)}
}

// Add adds delta to counter i (mod the array size).
func (a *CounterArray) Add(i int, delta uint64) {
	a.cs[i%len(a.cs)].Add(delta)
}

// Total sums all counters.
func (a *CounterArray) Total() uint64 {
	var t uint64
	for i := range a.cs {
		t += a.cs[i].Load()
	}
	return t
}
