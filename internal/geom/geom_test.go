package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient2DBasic(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient2D(a, b, Point{0, 1}) != 1 {
		t.Error("left turn not detected")
	}
	if Orient2D(a, b, Point{0, -1}) != -1 {
		t.Error("right turn not detected")
	}
	if Orient2D(a, b, Point{2, 0}) != 0 {
		t.Error("collinear not detected")
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points nearly collinear at the limit of double precision: the
	// exact fallback must still give consistent, antisymmetric answers.
	a := Point{0, 0}
	b := Point{1e-30, 1e-30}
	c := Point{2e-30, 2e-30 + 1e-60}
	s1 := Orient2D(a, b, c)
	s2 := Orient2D(b, a, c)
	if s1 != -s2 {
		t.Errorf("orientation not antisymmetric: %d vs %d", s1, s2)
	}
	// Shewchuk's classic failure case for naive floats.
	p := Point{0.5, 0.5}
	q := Point{12, 12}
	r := Point{24, 24}
	if Orient2D(p, q, r) != 0 {
		t.Error("exactly collinear points misclassified")
	}
}

func TestInCircleBasic(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0, 1} // CCW
	if InCircle(a, b, c, Point{0.5, 0.5}) != 1 {
		t.Error("interior point not inside")
	}
	if InCircle(a, b, c, Point{5, 5}) != -1 {
		t.Error("far point not outside")
	}
	if InCircle(a, b, c, Point{1, 1}) != 0 {
		t.Error("cocircular point not on circle")
	}
}

func TestQuickInCircleConsistentWithDistance(t *testing.T) {
	f := func(ax, ay, r, theta float64) bool {
		// Build a circle with known center/radius; classify a test point
		// by comparing distances, then check InCircle agrees.
		cx := math.Mod(math.Abs(ax), 10)
		cy := math.Mod(math.Abs(ay), 10)
		rad := math.Mod(math.Abs(r), 10) + 1
		a := Point{cx + rad, cy}
		b := Point{cx, cy + rad}
		c := Point{cx - rad, cy} // right -> top -> left: CCW
		th := math.Mod(theta, 2*math.Pi)
		for _, scale := range []float64{0.5, 0.99, 1.01, 2} {
			d := Point{cx + scale*rad*math.Cos(th), cy + scale*rad*math.Sin(th)}
			want := 0
			dd := math.Hypot(d.X-cx, d.Y-cy)
			if dd < rad*0.999 {
				want = 1
			} else if dd > rad*1.001 {
				want = -1
			} else {
				continue // too close to the circle for the float oracle
			}
			if InCircle(a, b, c, d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCircumcenter(t *testing.T) {
	a, b, c := Point{0, 0}, Point{2, 0}, Point{0, 2}
	cc := Circumcenter(a, b, c)
	if math.Abs(cc.X-1) > 1e-12 || math.Abs(cc.Y-1) > 1e-12 {
		t.Errorf("circumcenter %v, want (1,1)", cc)
	}
	// Equidistance property on a scalene triangle.
	a, b, c = Point{0.3, 1.7}, Point{4.1, 0.2}, Point{2.2, 3.9}
	cc = Circumcenter(a, b, c)
	da, db, dc := Dist2(cc, a), Dist2(cc, b), Dist2(cc, c)
	if math.Abs(da-db) > 1e-9 || math.Abs(da-dc) > 1e-9 {
		t.Errorf("circumcenter not equidistant: %g %g %g", da, db, dc)
	}
}

func TestMinAngleCos(t *testing.T) {
	// Equilateral: all angles 60°, min-angle cos = 0.5.
	h := math.Sqrt(3) / 2
	got := MinAngleCos(Point{0, 0}, Point{1, 0}, Point{0.5, h})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("equilateral MinAngleCos = %g, want 0.5", got)
	}
	// Skinny triangle: tiny min angle, cosine near 1.
	skinny := MinAngleCos(Point{0, 0}, Point{1, 0}, Point{0.5, 0.001})
	if skinny < math.Cos(5*math.Pi/180) {
		t.Errorf("skinny triangle min-angle cos %g too small", skinny)
	}
}

func TestGeneratorsDeterministicAndBounded(t *testing.T) {
	cube := InCube(10000, 3)
	for _, p := range cube {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("InCube point %v outside unit square", p)
		}
	}
	again := InCube(10000, 3)
	for i := range cube {
		if cube[i] != again[i] {
			t.Fatal("InCube not deterministic")
		}
	}
	kuz := Kuzmin(10000, 5)
	// Kuzmin concentrates near the origin: the median radius is about
	// sqrt(3) (M(r)=0.5), far below the max.
	inside := 0
	for _, p := range kuz {
		if math.Hypot(p.X, p.Y) < 2 {
			inside++
		}
	}
	if inside < 4000 {
		t.Errorf("only %d/10000 Kuzmin points within r<2; distribution wrong", inside)
	}
}

func TestMortonOrderIsPermutation(t *testing.T) {
	pts := InCube(5000, 9)
	ord := MortonOrder(pts)
	seen := make([]bool, len(pts))
	for _, i := range ord {
		if seen[i] {
			t.Fatalf("index %d repeated", i)
		}
		seen[i] = true
	}
	// Locality: consecutive points in Morton order are near each other
	// on average (far below the ~0.52 expected for random pairs).
	sum := 0.0
	for i := 1; i < len(ord); i++ {
		sum += math.Sqrt(Dist2(pts[ord[i]], pts[ord[i-1]]))
	}
	if mean := sum / float64(len(ord)-1); mean > 0.2 {
		t.Errorf("mean Morton-consecutive distance %.3f; locality too poor", mean)
	}
}
