// Package geom provides 2-D points, robust orientation and in-circle
// predicates, and the paper's point distributions (2DinCube uniform
// square and 2Dkuzmin disk) for the Delaunay-refinement experiment.
//
// Predicates evaluate a floating-point determinant with a forward error
// bound (a static filter in the style of Shewchuk's adaptive
// predicates); ambiguous cases fall back to exact rational arithmetic
// (math/big), so results are always correct and deterministic.
package geom

import (
	"math"
	"math/big"

	"phasehash/internal/hashx"
	"phasehash/internal/parallel"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Orient2D returns +1 if a,b,c make a left (counter-clockwise) turn, -1
// for a right turn, and 0 if they are collinear.
func Orient2D(a, b, c Point) int {
	detl := (b.X - a.X) * (c.Y - a.Y)
	detr := (b.Y - a.Y) * (c.X - a.X)
	det := detl - detr
	// Static filter (Shewchuk): |det| above this bound is trustworthy.
	errBound := 3.3306690738754716e-16 * (math.Abs(detl) + math.Abs(detr))
	if det > errBound {
		return 1
	}
	if det < -errBound {
		return -1
	}
	return orient2DExact(a, b, c)
}

func orient2DExact(a, b, c Point) int {
	ax, ay := big.NewFloat(a.X), big.NewFloat(a.Y)
	bx, by := big.NewFloat(b.X), big.NewFloat(b.Y)
	cx, cy := big.NewFloat(c.X), big.NewFloat(c.Y)
	prec := uint(200)
	for _, f := range []*big.Float{ax, ay, bx, by, cx, cy} {
		f.SetPrec(prec)
	}
	t1 := new(big.Float).SetPrec(prec).Sub(bx, ax)
	t2 := new(big.Float).SetPrec(prec).Sub(cy, ay)
	t3 := new(big.Float).SetPrec(prec).Sub(by, ay)
	t4 := new(big.Float).SetPrec(prec).Sub(cx, ax)
	l := new(big.Float).SetPrec(prec).Mul(t1, t2)
	r := new(big.Float).SetPrec(prec).Mul(t3, t4)
	return l.Cmp(r)
}

// InCircle returns +1 if d lies strictly inside the circumcircle of the
// counter-clockwise triangle (a, b, c), -1 if strictly outside, 0 on the
// circle.
func InCircle(a, b, c, d Point) int {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	errBound := 1.1102230246251565e-15 * permanent
	if det > errBound {
		return 1
	}
	if det < -errBound {
		return -1
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) int {
	const prec = 400
	f := func(x float64) *big.Float { return new(big.Float).SetPrec(prec).SetFloat64(x) }
	sub := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Sub(x, y) }
	mul := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Mul(x, y) }
	add := func(x, y *big.Float) *big.Float { return new(big.Float).SetPrec(prec).Add(x, y) }

	adx, ady := sub(f(a.X), f(d.X)), sub(f(a.Y), f(d.Y))
	bdx, bdy := sub(f(b.X), f(d.X)), sub(f(b.Y), f(d.Y))
	cdx, cdy := sub(f(c.X), f(d.X)), sub(f(c.Y), f(d.Y))

	alift := add(mul(adx, adx), mul(ady, ady))
	blift := add(mul(bdx, bdx), mul(bdy, bdy))
	clift := add(mul(cdx, cdx), mul(cdy, cdy))

	t1 := mul(alift, sub(mul(bdx, cdy), mul(cdx, bdy)))
	t2 := mul(blift, sub(mul(cdx, ady), mul(adx, cdy)))
	t3 := mul(clift, sub(mul(adx, bdy), mul(bdx, ady)))
	det := add(add(t1, t2), t3)
	return det.Sign()
}

// Dist2 returns the squared distance between two points.
func Dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Circumcenter returns the circumcenter of triangle (a, b, c). The
// triangle must not be degenerate.
func Circumcenter(a, b, c Point) Point {
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	ux := (cy*(bx*bx+by*by) - by*(cx*cx+cy*cy)) / d
	uy := (bx*(cx*cx+cy*cy) - cx*(bx*bx+by*by)) / d
	return Point{a.X + ux, a.Y + uy}
}

// MinAngleCos returns the cosine of the smallest angle of triangle
// (a, b, c). Because cos is decreasing on (0, π), the smallest angle has
// the LARGEST cosine; a triangle is "bad" for bound α when
// MinAngleCos > cos(α).
func MinAngleCos(a, b, c Point) float64 {
	// Angle at each vertex via the law of cosines.
	l2a := Dist2(b, c) // side opposite a
	l2b := Dist2(a, c)
	l2c := Dist2(a, b)
	la, lb, lc := math.Sqrt(l2a), math.Sqrt(l2b), math.Sqrt(l2c)
	cosA := (l2b + l2c - l2a) / (2 * lb * lc)
	cosB := (l2a + l2c - l2b) / (2 * la * lc)
	cosC := (l2a + l2b - l2c) / (2 * la * lb)
	return math.Max(cosA, math.Max(cosB, cosC))
}

// InCube generates n points uniform in the unit square (the PBBS
// 2DinCube distribution), deterministically from the seed.
func InCube(n int, seed uint64) []Point {
	pts := make([]Point, n)
	parallel.For(n, func(i int) {
		pts[i] = Point{
			X: hashx.Float64At(seed, i),
			Y: hashx.Float64At(seed+1, i),
		}
	})
	return pts
}

// Kuzmin generates n points from the Kuzmin distribution (the PBBS
// 2Dkuzmin input): a radially symmetric disk with density concentrated
// at the center — the hard case for point location. The radial CDF is
// M(r) = 1 - 1/sqrt(1+r^2); inverting gives r(u) = sqrt(1/(1-u)^2 - 1).
func Kuzmin(n int, seed uint64) []Point {
	pts := make([]Point, n)
	parallel.For(n, func(i int) {
		u := hashx.Float64At(seed, i)
		if u > 0.9999 {
			u = 0.9999 // cap the tail so coordinates stay moderate
		}
		s := 1 / (1 - u)
		r := math.Sqrt(s*s - 1)
		theta := 2 * math.Pi * hashx.Float64At(seed+1, i)
		pts[i] = Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	})
	return pts
}

// Bounds returns the bounding box of pts.
func Bounds(pts []Point) (lo, hi Point) {
	lo = Point{math.Inf(1), math.Inf(1)}
	hi = Point{math.Inf(-1), math.Inf(-1)}
	for _, p := range pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}

// MortonOrder returns a permutation of [0,n) that sorts pts along a
// Z-order curve, giving the spatial locality the incremental Delaunay
// walk relies on for near-linear construction.
func MortonOrder(pts []Point) []int {
	lo, hi := Bounds(pts)
	sx := 1.0 / math.Max(hi.X-lo.X, 1e-300)
	sy := 1.0 / math.Max(hi.Y-lo.Y, 1e-300)
	type keyed struct {
		key uint64
		idx int
	}
	ks := make([]keyed, len(pts))
	parallel.For(len(pts), func(i int) {
		x := uint32((pts[i].X - lo.X) * sx * float64(1<<21-1))
		y := uint32((pts[i].Y - lo.Y) * sy * float64(1<<21-1))
		ks[i] = keyed{key: interleave(x, y), idx: i}
	})
	parallel.Sort(ks, func(a, b keyed) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.idx < b.idx
	})
	out := make([]int, len(pts))
	for i, k := range ks {
		out[i] = k.idx
	}
	return out
}

// interleave spreads the low 21 bits of x and y into a 42-bit Morton key.
func interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}
