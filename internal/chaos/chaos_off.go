//go:build !chaos

package chaos

// Enabled reports whether this binary was built with the chaos tag.
// It is a constant so that call sites guarded by `if chaos.Enabled`
// are removed by dead-code elimination: the production build pays
// nothing for the hooks.
const Enabled = false

// Configure is a no-op without the chaos tag.
func Configure(Profile, uint64) {}

// Disable is a no-op without the chaos tag.
func Disable() {}

// Active reports whether injection is currently live (never, here).
func Active() bool { return false }

// Yield is a no-op without the chaos tag.
func Yield(Site) {}

// FailCAS never forces a retry without the chaos tag.
func FailCAS(Site) bool { return false }

// Fault never injects without the chaos tag.
func Fault(Site) bool { return false }

// SkewWorker is a no-op without the chaos tag.
func SkewWorker(Site) {}

// ResetTrace is a no-op without the chaos tag.
func ResetTrace() {}

// TraceSummary reports the per-site fire counts (always empty, here).
func TraceSummary() string { return "" }
