//go:build chaos

package chaos

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
)

// Enabled reports whether this binary was built with the chaos tag.
const Enabled = true

// state is the active configuration; nil means injection is off.
var state atomic.Pointer[config]

type config struct {
	prof Profile
	seed uint64
}

// calls is a global draw counter: each hook call consumes one draw, so
// the decision stream depends on the seed and on the global arrival
// order of hook calls. That order varies run to run — which is the
// point: the injected perturbations differ across runs and thereby
// widen the space of schedules the oracle observes, while the oracle
// asserts the *quiescent outcome* never varies.
var calls atomic.Uint64

// fired counts, per site, how many injections actually triggered; the
// oracle prints this as the site trace of a failing run.
var fired [numSites]atomic.Uint64

// Configure arms injection with the given profile and seed and resets
// the trace. Safe to call concurrently with hook calls.
func Configure(p Profile, seed uint64) {
	ResetTrace()
	state.Store(&config{prof: p, seed: seed})
}

// Disable turns all injection off.
func Disable() { state.Store(nil) }

// Active reports whether injection is currently live.
func Active() bool { return state.Load() != nil }

// mix64 is splitmix64's finalizer: a cheap, well-distributed hash of
// the (seed, draw, site) triple.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns a per-mille value in [0, 1000) for the next decision at
// site s, or ok=false when injection is off.
func draw(s Site) (*config, uint32, bool) {
	c := state.Load()
	if c == nil {
		return nil, 0, false
	}
	n := calls.Add(1)
	r := mix64(c.seed ^ n*0x9e3779b97f4a7c15 ^ uint64(s)<<56)
	return c, uint32(r % 1000), true
}

// Yield perturbs the schedule at site s: with the profile's YieldPm it
// yields the processor, and with DelayPm it burns a short spin loop
// (simulating preemption mid-probe).
func Yield(s Site) {
	c, r, ok := draw(s)
	if !ok {
		return
	}
	if r < c.prof.YieldPm {
		fired[s].Add(1)
		runtime.Gosched()
		return
	}
	if c.prof.DelayPm > 0 && r < c.prof.YieldPm+c.prof.DelayPm {
		fired[s].Add(1)
		spin(c.prof.DelaySpin)
	}
}

// FailCAS reports whether the caller should pretend its CAS lost and
// retry. Only wired to sites where a lost CAS is a pure retry.
func FailCAS(s Site) bool {
	c, r, ok := draw(s)
	if !ok || r >= c.prof.FailPm {
		return false
	}
	fired[s].Add(1)
	return true
}

// Fault reports whether a seeded fault should be injected at site s.
// It draws from the profile's FailPm like FailCAS, but is for non-CAS
// fault decisions — e.g. epoch.Server's forced mid-epoch result
// cancellation, which is only wired where the injected failure affects
// the response path, never the quiescent table state (the determinism
// oracle replays across fault profiles and asserts byte identity).
func Fault(s Site) bool {
	c, r, ok := draw(s)
	if !ok || r >= c.prof.FailPm {
		return false
	}
	fired[s].Add(1)
	return true
}

// SkewWorker delays a starting parallel worker by a seeded spin of up
// to the profile's SkewSpinMax iterations, so workers enter their loops
// staggered instead of in lockstep.
func SkewWorker(s Site) {
	c := state.Load()
	if c == nil || c.prof.SkewSpinMax == 0 {
		return
	}
	n := calls.Add(1)
	fired[s].Add(1)
	spin(uint32(mix64(c.seed^n*0x9e3779b97f4a7c15) % uint64(c.prof.SkewSpinMax)))
}

// spinSink defeats dead-code elimination of the spin loop.
var spinSink atomic.Uint64

func spin(n uint32) {
	var x uint64 = 1
	for i := uint32(0); i < n; i++ {
		x = mix64(x)
	}
	spinSink.Add(x)
}

// ResetTrace zeroes the per-site fire counts and the draw counter.
func ResetTrace() {
	calls.Store(0)
	for i := range fired {
		fired[i].Store(0)
	}
}

// TraceSummary reports the sites that fired since the last ResetTrace,
// as "site=count" pairs; empty when nothing fired.
func TraceSummary() string {
	var b strings.Builder
	for i := range fired {
		if n := fired[i].Load(); n > 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", Site(i), n)
		}
	}
	return b.String()
}
