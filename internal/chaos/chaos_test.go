package chaos

import (
	"strings"
	"testing"
)

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", p.Name, got, ok)
		}
	}
	if _, ok := ProfileByName("no-such-profile"); ok {
		t.Fatal("ProfileByName accepted an unknown name")
	}
}

func TestSiteStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Site(0); int(s) < NumSites; s++ {
		name := s.String()
		if name == "unknown-site" || seen[name] {
			t.Fatalf("site %d has bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
}

// TestHooksInactiveByDefault holds in both build variants: before
// Configure, no hook may fire or force a retry.
func TestHooksInactiveByDefault(t *testing.T) {
	Disable()
	ResetTrace()
	if Active() {
		t.Fatal("Active() before Configure")
	}
	for i := 0; i < 1000; i++ {
		Yield(SiteWordInsertProbe)
		SkewWorker(SiteParallelWorker)
		if FailCAS(SiteWordInsertClaim) {
			t.Fatal("FailCAS fired while disabled")
		}
	}
	if s := TraceSummary(); s != "" {
		t.Fatalf("trace not empty while disabled: %q", s)
	}
}

// TestInjectionFires only observes injections in the chaos build; in
// the default build it asserts the hooks stay silent even configured.
func TestInjectionFires(t *testing.T) {
	Configure(Profile{Name: "test", YieldPm: 500, FailPm: 500, SkewSpinMax: 16}, 42)
	defer Disable()
	failed := 0
	for i := 0; i < 2000; i++ {
		Yield(SiteWordInsertProbe)
		SkewWorker(SiteParallelWorker)
		if FailCAS(SiteWordInsertDisplace) {
			failed++
		}
	}
	sum := TraceSummary()
	if !Enabled {
		if failed != 0 || sum != "" {
			t.Fatalf("no-op build injected: failed=%d trace=%q", failed, sum)
		}
		return
	}
	if failed == 0 {
		t.Fatal("chaos build: FailCAS never fired at 50% rate")
	}
	for _, want := range []string{"word-insert-probe=", "word-insert-displace=", "parallel-worker="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("trace %q missing %q", sum, want)
		}
	}
	ResetTrace()
	if s := TraceSummary(); s != "" {
		t.Fatalf("trace not reset: %q", s)
	}
}
