package chaos

// Site-name string constants. These are the single source of truth for
// the human-readable names of injection sites: chaos trace summaries
// (Site.String) and the obs telemetry labels (internal/obs) both build
// on these constants, so a rename here propagates to every consumer and
// the two vocabularies cannot drift apart.
const (
	SiteNameWordInsertProbe    = "word-insert-probe"
	SiteNameWordInsertClaim    = "word-insert-claim"
	SiteNameWordInsertMerge    = "word-insert-merge"
	SiteNameWordInsertDisplace = "word-insert-displace"
	SiteNameWordDeleteProbe    = "word-delete-probe"
	SiteNamePtrInsertProbe     = "ptr-insert-probe"
	SiteNamePtrInsertClaim     = "ptr-insert-claim"
	SiteNamePtrInsertMerge     = "ptr-insert-merge"
	SiteNamePtrInsertDisplace  = "ptr-insert-displace"
	SiteNamePtrDeleteProbe     = "ptr-delete-probe"
	SiteNameGrowMigrate        = "grow-migrate"
	SiteNameGrowDrain          = "grow-drain"
	SiteNameParallelWorker     = "parallel-worker"
	SiteNameEpochAdmit         = "epoch-admit"
	SiteNameEpochFlush         = "epoch-flush"
	SiteNameEpochCancel        = "epoch-cancel"

	SiteNameCompactInsertProbe    = "compact-insert-probe"
	SiteNameCompactInsertClaim    = "compact-insert-claim"
	SiteNameCompactInsertMerge    = "compact-insert-merge"
	SiteNameCompactInsertDisplace = "compact-insert-displace"
	SiteNameCompactDeleteProbe    = "compact-delete-probe"
	SiteNameCompactCtrlCAS        = "compact-ctrl-cas"
)

// siteNames maps Site values to their names, in declaration order.
var siteNames = [NumSites]string{
	SiteWordInsertProbe:    SiteNameWordInsertProbe,
	SiteWordInsertClaim:    SiteNameWordInsertClaim,
	SiteWordInsertMerge:    SiteNameWordInsertMerge,
	SiteWordInsertDisplace: SiteNameWordInsertDisplace,
	SiteWordDeleteProbe:    SiteNameWordDeleteProbe,
	SitePtrInsertProbe:     SiteNamePtrInsertProbe,
	SitePtrInsertClaim:     SiteNamePtrInsertClaim,
	SitePtrInsertMerge:     SiteNamePtrInsertMerge,
	SitePtrInsertDisplace:  SiteNamePtrInsertDisplace,
	SitePtrDeleteProbe:     SiteNamePtrDeleteProbe,
	SiteGrowMigrate:        SiteNameGrowMigrate,
	SiteGrowDrain:          SiteNameGrowDrain,
	SiteParallelWorker:     SiteNameParallelWorker,
	SiteEpochAdmit:         SiteNameEpochAdmit,
	SiteEpochFlush:         SiteNameEpochFlush,
	SiteEpochCancel:        SiteNameEpochCancel,

	SiteCompactInsertProbe:    SiteNameCompactInsertProbe,
	SiteCompactInsertClaim:    SiteNameCompactInsertClaim,
	SiteCompactInsertMerge:    SiteNameCompactInsertMerge,
	SiteCompactInsertDisplace: SiteNameCompactInsertDisplace,
	SiteCompactDeleteProbe:    SiteNameCompactDeleteProbe,
	SiteCompactCtrlCAS:        SiteNameCompactCtrlCAS,
}
