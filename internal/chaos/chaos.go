// Package chaos is a seeded fault-injection layer for manufacturing
// adversarial schedules inside the phase-concurrent tables.
//
// The hash tables' determinism claim (Shun & Blelloch, SPAA 2014) is
// that the quiescent state is identical under *every* legal schedule.
// Ordinary tests only exercise the schedules the Go runtime happens to
// produce; this package perturbs the probe/CAS/migration hot paths at
// named sites — extra goroutine yields, spin delays, forced CAS retries
// ("pretend the CAS lost"), and worker start skew — so that the
// determinism oracle (package detres) can replay a workload across many
// very different schedules and assert the quiescent state never moves.
//
// The package has two build-tag implementations:
//
//   - default (no tag): every hook is a no-op behind the constant
//     Enabled == false. Call sites are written
//     `if chaos.Enabled { chaos.Yield(site) }`, so the compiler deletes
//     them entirely: production and benchmark binaries carry zero cost.
//   - `-tags chaos`: the hooks are live. Nothing fires until a test or
//     driver calls Configure with a Profile and seed; injection
//     decisions are drawn from a seeded counter-based generator, and
//     per-site fire counts are recorded for failure repros.
//
// Forced CAS failures are injected only at sites where a lost CAS is a
// pure retry (the insert claim/merge/displacement points): the loop
// re-reads the cell and tries again, so semantics are untouched — only
// the schedule changes. Delete-path CASes are *not* forced to fail, as
// their failure branch encodes "a concurrent delete got there first".
package chaos

// Site names one injection point in the table or runtime code. Sites
// exist (as constants) in both build variants so call sites always
// compile; only the chaos build interprets them.
type Site uint8

// Injection sites.
const (
	SiteWordInsertProbe       Site = iota // top of WordTable insert probe loop
	SiteWordInsertClaim                   // empty-cell claim CAS in WordTable inserts
	SiteWordInsertMerge                   // duplicate-merge CAS in WordTable inserts
	SiteWordInsertDisplace                // displacement CAS in WordTable inserts
	SiteWordDeleteProbe                   // WordTable delete probe/replacement loops
	SitePtrInsertProbe                    // top of PtrTable insert probe loop
	SitePtrInsertClaim                    // empty-cell claim CAS in PtrTable.Insert
	SitePtrInsertMerge                    // duplicate-merge CAS in PtrTable.Insert
	SitePtrInsertDisplace                 // displacement CAS in PtrTable.Insert
	SitePtrDeleteProbe                    // PtrTable delete probe/replacement loops
	SiteGrowMigrate                       // per-element step of GrowTable.migrate
	SiteGrowDrain                         // per-element step of GrowTable.drainLocked
	SiteParallelWorker                    // worker goroutine start in parallel.For/Do
	SiteEpochAdmit                        // epoch.Server.Submit admission path
	SiteEpochFlush                        // start of each epoch flush (delayed flush / stalled worker)
	SiteEpochCancel                       // epoch result delivery (forced mid-epoch cancellation)
	SiteCompactInsertProbe                // top of CompactTable insert probe loop
	SiteCompactInsertClaim                // empty-cell claim CAS in CompactTable inserts
	SiteCompactInsertMerge                // duplicate-merge CAS in CompactTable inserts
	SiteCompactInsertDisplace             // displacement CAS in CompactTable inserts
	SiteCompactDeleteProbe                // CompactTable delete probe/replacement loops
	SiteCompactCtrlCAS                    // ctrl-word publication CAS in CompactTable.syncCtrl
	numSites
)

// NumSites is the number of named injection sites.
const NumSites = int(numSites)

// String implements fmt.Stringer. The names live in sitenames.go as
// exported constants shared with the obs telemetry labels.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "unknown-site"
}

// Profile sets the per-site injection rates. Rates are per-mille
// (0..1000) probabilities evaluated independently at each hook call.
type Profile struct {
	Name string
	// YieldPm is the per-mille chance a Yield site runs runtime.Gosched.
	YieldPm uint32
	// FailPm is the per-mille chance a FailCAS site pretends the CAS lost.
	FailPm uint32
	// DelayPm is the per-mille chance a Yield site spins for DelaySpin
	// iterations (a coarse stand-in for preemption mid-probe).
	DelayPm   uint32
	DelaySpin uint32
	// SkewSpinMax is the maximum start-skew spin (iterations) applied to
	// each parallel worker goroutine; 0 disables skew.
	SkewSpinMax uint32
}

// ProfileNone injects nothing; it is the grid's control cell.
var ProfileNone = Profile{Name: "none"}

// Profiles is the built-in fault-profile set used by the oracle grid
// and `phload -chaos`. ProfileNone is deliberately first: the oracle
// uses the first cell of the grid as the reference run.
var Profiles = []Profile{
	ProfileNone,
	{Name: "yield", YieldPm: 300},
	{Name: "casstorm", FailPm: 400, YieldPm: 100},
	{Name: "delay", DelayPm: 100, DelaySpin: 400, SkewSpinMax: 20000},
	{Name: "mixed", YieldPm: 150, FailPm: 200, DelayPm: 50, DelaySpin: 200, SkewSpinMax: 5000},
}

// ProfileByName looks up a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
