package phasehash

import (
	"errors"
	"sort"
	"testing"
)

func TestShardedSetFacade(t *testing.T) {
	s := NewShardedSet(1<<12, 8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", s.NumShards())
	}
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i%400 + 1) // duplicates: 400 distinct
	}
	if added := s.InsertAll(keys); added != 400 {
		t.Fatalf("InsertAll added %d, want 400", added)
	}
	if got := s.ContainsAll(keys); got != len(keys) {
		t.Fatalf("ContainsAll = %d, want %d", got, len(keys))
	}
	if !s.Contains(17) || s.Contains(401) {
		t.Fatal("per-element Contains wrong")
	}
	if s.Count() != 400 {
		t.Fatalf("Count = %d, want 400", s.Count())
	}
	got := s.Elements()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := 0; i < 400; i++ {
		if got[i] != uint64(i+1) {
			t.Fatalf("Elements missing %d", i+1)
		}
	}
	if removed := s.DeleteAll(keys[:500]); removed == 0 {
		t.Fatal("DeleteAll removed nothing")
	}
	if _, err := s.TryInsert(0); !errors.Is(err, ErrReservedKey) {
		t.Fatal("TryInsert(0) did not report ErrReservedKey")
	}
	if _, err := s.TryInsertAll([]uint64{5, 0}); !errors.Is(err, ErrReservedKey) {
		t.Fatal("TryInsertAll with key 0 did not report ErrReservedKey")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear left elements")
	}
}

// TestShardedSetDeterministicElements pins the public determinism
// contract: same key set, capacity and shard count => same Elements
// order, regardless of insertion path and batch order.
func TestShardedSetDeterministicElements(t *testing.T) {
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	a := NewShardedSet(1<<14, 16)
	a.InsertAll(keys)
	b := NewShardedSet(1<<14, 16)
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(keys[i])
	}
	ea, eb := a.Elements(), b.Elements()
	if len(ea) != len(eb) {
		t.Fatalf("Elements length %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("Elements[%d] = %#x vs %#x", i, ea[i], eb[i])
		}
	}
}

func TestShardedMap32Facade(t *testing.T) {
	for _, policy := range []Combine{KeepMin, KeepMax, Sum} {
		m := NewShardedMap32(1<<10, policy, 4)
		entries := []Entry{
			{Key: 1, Value: 10}, {Key: 1, Value: 30},
			{Key: 2, Value: 5},
		}
		if added := m.InsertAll(entries); added != 2 {
			t.Fatalf("policy %d: InsertAll added %d keys, want 2", policy, added)
		}
		v, ok := m.Find(1)
		if !ok {
			t.Fatalf("policy %d: Find(1) missing", policy)
		}
		want := map[Combine]uint32{KeepMin: 10, KeepMax: 30, Sum: 40}[policy]
		if v != want {
			t.Fatalf("policy %d: Find(1) = %d, want %d", policy, v, want)
		}
		vals := make([]uint32, 2)
		if n := m.FindAll([]uint32{1, 3}, vals); n != 1 {
			t.Fatalf("policy %d: FindAll = %d, want 1", policy, n)
		}
		if vals[0] != want || vals[1] != 0 {
			t.Fatalf("policy %d: FindAll vals = %v", policy, vals)
		}
		ents := m.Entries()
		if len(ents) != 2 {
			t.Fatalf("policy %d: Entries = %v", policy, ents)
		}
		if m.DeleteAll([]uint32{1}) != 1 || m.Count() != 1 {
			t.Fatalf("policy %d: DeleteAll/Count wrong", policy)
		}
		if !m.Insert(7, 7) || m.NumShards() != 4 {
			t.Fatalf("policy %d: Insert/NumShards wrong", policy)
		}
		if _, err := m.TryInsert(0, 1); !errors.Is(err, ErrReservedKey) {
			t.Fatalf("policy %d: TryInsert(0) did not report ErrReservedKey", policy)
		}
		if _, err := m.TryInsertAll([]Entry{{Key: 0, Value: 1}, {Key: 9, Value: 9}}); !errors.Is(err, ErrReservedKey) {
			t.Fatalf("policy %d: TryInsertAll with key 0 did not report ErrReservedKey", policy)
		}
		if !m.Delete(9) {
			t.Fatalf("policy %d: Delete(9) failed", policy)
		}
	}
}
