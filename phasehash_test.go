package phasehash

import (
	"strings"
	"sync"
	"testing"

	"phasehash/internal/core"
	"phasehash/internal/parallel"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(64)
	if !s.Insert(7) || s.Insert(7) {
		t.Fatal("Insert duplicate accounting wrong")
	}
	if !s.Contains(7) || s.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if s.Count() != 1 {
		t.Fatal("Count wrong")
	}
	if !s.Delete(7) || s.Delete(7) {
		t.Fatal("Delete wrong")
	}
	s.Insert(1)
	s.Insert(2)
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear did not empty")
	}
	if s.Capacity() != 64 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
}

func TestSetDeterministicElementsAcrossGoroutines(t *testing.T) {
	build := func(workers int) []uint64 {
		s := NewSet(1 << 14)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(w); k < 10000; k += uint64(workers) {
					s.Insert(k*2617 + 1)
				}
			}(w)
		}
		wg.Wait() // phase barrier
		return s.Elements()
	}
	ref := build(1)
	for _, w := range []int{2, 4, 8} {
		got := build(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: length %d vs %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: Elements differ at %d", w, i)
			}
		}
	}
}

func TestMap32Policies(t *testing.T) {
	for _, tc := range []struct {
		policy Combine
		want   uint32
	}{{KeepMin, 2}, {KeepMax, 9}, {Sum, 18}} {
		m := NewMap32(64, tc.policy)
		var wg sync.WaitGroup
		for _, v := range []uint32{5, 2, 9, 2} {
			wg.Add(1)
			go func(v uint32) {
				defer wg.Done()
				m.Insert(77, v)
			}(v)
		}
		wg.Wait()
		got, ok := m.Find(77)
		if !ok || got != tc.want {
			t.Fatalf("policy %v: Find = (%d,%v), want %d", tc.policy, got, ok, tc.want)
		}
		if m.Count() != 1 {
			t.Fatalf("policy %v: Count = %d", tc.policy, m.Count())
		}
		es := m.Entries()
		if len(es) != 1 || es[0].Key != 77 || es[0].Value != tc.want {
			t.Fatalf("policy %v: Entries = %v", tc.policy, es)
		}
		if !m.Delete(77) || m.Count() != 0 {
			t.Fatalf("policy %v: Delete failed", tc.policy)
		}
	}
}

func TestMap32ZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("key 0 did not panic")
		}
	}()
	NewMap32(8, Sum).Insert(0, 1)
}

func TestStringMapWordCount(t *testing.T) {
	text := "the cat and the dog and the bird"
	words := strings.Fields(text)
	m := NewStringMap(64, Sum)
	parallel.ForGrain(len(words), 1, func(i int) { m.Insert(words[i], 1) })
	if v, _ := m.Find("the"); v != 3 {
		t.Fatalf("count(the) = %d", v)
	}
	if v, _ := m.Find("and"); v != 2 {
		t.Fatalf("count(and) = %d", v)
	}
	if _, ok := m.Find("fish"); ok {
		t.Fatal("found absent word")
	}
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	// Deterministic entries order.
	a := m.Entries()
	m2 := NewStringMap(64, Sum)
	parallel.ForGrain(len(words), 1, func(i int) { m2.Insert(words[i], 1) })
	b := m2.Entries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Entries differ at %d", i)
		}
	}
}

func TestStringMapKeepMinAndDelete(t *testing.T) {
	m := NewStringMap(32, KeepMin)
	m.Insert("k", 9)
	m.Insert("k", 3)
	m.Insert("k", 7)
	if v, _ := m.Find("k"); v != 3 {
		t.Fatalf("min = %d", v)
	}
	if !m.Delete("k") || m.Delete("k") {
		t.Fatal("Delete semantics wrong")
	}
}

func TestCheckedSetAllowsLegalPhases(t *testing.T) {
	c := Checked(NewSet(256))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w*50 + 1); k < uint64(w*50+51); k++ {
				c.Insert(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Count() != 200 {
		t.Fatalf("Count = %d", c.Count())
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w*50 + 1); k < uint64(w*50+51); k++ {
				if !c.Contains(k) {
					t.Errorf("missing %d", k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCheckedSetDetectsViolation(t *testing.T) {
	c := Checked(NewSet(256))
	// White-box: hold the insert phase open on the guard, then attempt a
	// read — the overlap the checker exists to catch.
	if err := c.guard.Enter(core.PhaseInsert); err != nil {
		t.Fatal(err)
	}
	defer c.guard.Exit(core.PhaseInsert)
	defer func() {
		if recover() == nil {
			t.Fatal("read during insert phase did not panic")
		}
	}()
	c.Contains(1)
}

func TestSetParallelism(t *testing.T) {
	old := SetParallelism(1)
	if got := SetParallelism(old); got != 1 {
		t.Fatalf("SetParallelism returned %d, want 1", got)
	}
}
